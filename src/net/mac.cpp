#include "net/mac.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/labels.hpp"
#include "obs/obs.hpp"

namespace vab::net {

namespace {
// ARQ accounting across all readers: the protocol's cost under impairment.
struct ArqMetrics {
  obs::Counter acks = obs::counter("net.arq.acks");
  obs::Counter duplicates = obs::counter("net.arq.duplicates");
  obs::Counter retries = obs::counter("net.arq.retries");
  obs::Counter timeouts = obs::counter("net.arq.timeouts");
  obs::Counter demotions = obs::counter("net.arq.demotions");

  static ArqMetrics& get() {
    static ArqMetrics* m = new ArqMetrics;  // leaked: read at exit
    return *m;
  }
};

// Rate-adaptation accounting: rung residency and step/reconfigure totals.
struct McsMetrics {
  obs::CounterFamily rung_polls{obs::Registry::global(), "net.mcs.rung_polls",
                                mcs::kMaxRungs + 1};
  obs::Counter steps_up = obs::counter("net.mcs.steps_up");
  obs::Counter steps_down = obs::counter("net.mcs.steps_down");
  obs::Counter reconfigures = obs::counter("net.mcs.reconfigures");

  static McsMetrics& get() {
    static McsMetrics* m = new McsMetrics;  // leaked: read at exit
    return *m;
  }
};
}  // namespace

double MacTiming::slot_duration_s() const {
  // Frame: 4 header + payload + 2 CRC bytes, FM0 preamble/idle overhead
  // approximated as 10 ms, plus 20% margin.
  const double bits = (4.0 + static_cast<double>(slot_payload_bytes) + 2.0) * 8.0;
  return 1.2 * (bits / uplink_bitrate_bps + 0.010);
}

NodeMac::NodeMac(std::uint8_t address, MacTiming timing)
    : addr_(address), timing_(timing), slot_(address) {
  if (address == kBroadcastAddr)
    throw std::invalid_argument("broadcast is not a node address");
}

std::optional<NodeMac::Response> NodeMac::on_downlink(const Frame& dl,
                                                      const SensorReading& reading) {
  switch (dl.type) {
    case FrameType::kAssignSlot: {
      if (dl.addr != addr_ || dl.payload.size() != 1) return std::nullopt;
      slot_ = dl.payload[0];
      return std::nullopt;
    }
    case FrameType::kAck: {
      // Reader confirmed our outstanding seq: advance the window.
      if (dl.addr != addr_ || dl.payload.size() != 1) return std::nullopt;
      if (awaiting_ack_ && dl.payload[0] == seq_) {
        ++seq_;
        awaiting_ack_ = false;
      }
      return std::nullopt;
    }
    case FrameType::kQuery: {
      if (dl.addr != addr_ && dl.addr != kBroadcastAddr) return std::nullopt;
      // MCS command byte: low nibble is the rung the reader wants the reply
      // sent at. Nodes that never called enable_mcs ignore it.
      if (ladder_ != nullptr && !dl.payload.empty()) {
        const std::size_t commanded =
            std::min<std::size_t>(dl.payload[0] & 0x0F, ladder_->size() - 1);
        if (commanded != rung_) reconfigure(commanded);
      }
      Response r;
      r.frame.addr = addr_;
      r.frame.type = FrameType::kSensorReport;
      r.frame.seq = seq_;  // unchanged until ACKed: retransmissions dedupe on it
      r.frame.payload = encode_reading(reading);
      r.tx_offset_s = timing_.guard_s;
      awaiting_ack_ = true;
      return r;
    }
    case FrameType::kQueryAll: {
      if (dl.payload.size() != 1) return std::nullopt;
      const std::uint8_t n_slots = dl.payload[0];
      if (slot_ >= n_slots) return std::nullopt;
      Response r;
      r.frame.addr = addr_;
      r.frame.type = FrameType::kSensorReport;
      r.frame.seq = seq_;
      r.frame.payload = encode_reading(reading);
      r.tx_offset_s = timing_.guard_s +
                      static_cast<double>(slot_) * timing_.slot_duration_s();
      awaiting_ack_ = true;
      return r;
    }
    case FrameType::kSensorReport:
      return std::nullopt;  // uplink type; ignore on the downlink
  }
  return std::nullopt;
}

void NodeMac::enable_mcs(const mcs::McsLadder& ladder) {
  ladder_ = &ladder;
  // Materialise the starting rung's modem/FEC state without counting it as
  // a reconfiguration (nothing changed from the node's point of view).
  rung_ = std::min(mcs::McsLadder::kPaperRung, ladder.size() - 1);
  ladder.rung(rung_).apply(phy_cfg_, fec_cfg_);
}

void NodeMac::reconfigure(std::size_t rung) {
  rung_ = rung;
  ladder_->rung(rung_).apply(phy_cfg_, fec_cfg_);
  ++reconfigures_;
  McsMetrics::get().reconfigures.inc();
}

ReaderMac::ReaderMac(MacTiming timing, ArqConfig arq) : timing_(timing), arq_(arq) {}

Frame ReaderMac::make_query(std::uint8_t addr) {
  Frame f;
  f.addr = addr;
  f.type = FrameType::kQuery;
  f.seq = seq_++;
  // In MCS mode the query carries the commanded rung; fixed-rate queries
  // keep the legacy empty payload, bit-for-bit.
  if (ladder_ != nullptr)
    f.payload = {static_cast<std::uint8_t>(rung_of(addr) & 0x0F)};
  return f;
}

Frame ReaderMac::make_round_announcement(std::uint8_t n_slots) {
  Frame f;
  f.addr = kBroadcastAddr;
  f.type = FrameType::kQueryAll;
  f.seq = seq_++;
  f.payload = {n_slots};
  return f;
}

Frame ReaderMac::make_slot_assignment(std::uint8_t addr, std::uint8_t slot) {
  Frame f;
  f.addr = addr;
  f.type = FrameType::kAssignSlot;
  f.seq = seq_++;
  f.payload = {slot};
  return f;
}

Frame ReaderMac::make_ack(std::uint8_t addr, std::uint8_t seq) {
  Frame f;
  f.addr = addr;
  f.type = FrameType::kAck;
  f.seq = seq_++;
  f.payload = {seq};
  ArqMetrics::get().acks.inc();
  return f;
}

ReaderMac::UplinkEvent ReaderMac::on_report(const Frame& report) {
  ArqState& st = arq_state_[report.addr];
  NodeStats& ns = stats_[report.addr];
  if (st.have_seq && st.last_seq == report.seq) {
    // Our ACK was lost and the node retransmitted: re-ACK, don't re-count.
    ++ns.duplicates;
    ArqMetrics::get().duplicates.inc();
    st.consecutive_misses = 0;
    return UplinkEvent::kDuplicate;
  }
  st.have_seq = true;
  st.last_seq = report.seq;
  st.consecutive_misses = 0;
  ++ns.delivered;
  return UplinkEvent::kDelivered;
}

void ReaderMac::on_uplink(std::uint8_t addr, bool crc_ok) {
  auto& s = stats_[addr];
  if (crc_ok)
    ++s.delivered;
  else
    ++s.corrupted;
}

ReaderMac::MissAction ReaderMac::on_miss(std::uint8_t addr) {
  ArqState& st = arq_state_[addr];
  NodeStats& ns = stats_[addr];
  ++st.consecutive_misses;
  ++ns.timeouts;
  ArqMetrics::get().timeouts.inc();
  if (st.consecutive_misses > arq_.demote_after_misses) return MissAction::kDemote;
  ++ns.retries;
  ArqMetrics::get().retries.inc();
  return MissAction::kRetry;
}

std::size_t ReaderMac::backoff_slots(std::uint8_t addr) const {
  const auto it = arq_state_.find(addr);
  const std::size_t misses = it == arq_state_.end() ? 0 : it->second.consecutive_misses;
  if (misses == 0) return 0;
  // base * 2^(misses-1), saturating at the ceiling without overflow.
  std::size_t slots = std::max<std::size_t>(arq_.backoff_base_slots, 1);
  for (std::size_t i = 1; i < misses && slots < arq_.backoff_ceiling_slots; ++i)
    slots *= 2;
  return std::min(slots, arq_.backoff_ceiling_slots);
}

void ReaderMac::demote(std::uint8_t addr) {
  arq_state_.erase(addr);
  ++stats_[addr].demotions;
  ArqMetrics::get().demotions.inc();
  // Rate state is link state: a demoted node re-enters at the start rung
  // after rediscovery, with fresh EWMAs.
  controllers_.erase(addr);
}

void ReaderMac::enable_mcs(const mcs::McsLadder& ladder, mcs::AdaptConfig adapt) {
  ladder_ = &ladder;
  adapt_ = adapt;
}

mcs::RateController& ReaderMac::controller_for(std::uint8_t addr) {
  auto it = controllers_.find(addr);
  if (it == controllers_.end())
    it = controllers_.emplace(addr, mcs::RateController(*ladder_, adapt_)).first;
  return it->second;
}

std::size_t ReaderMac::rung_of(std::uint8_t addr) {
  if (ladder_ == nullptr) return 0;
  return controller_for(addr).rung();
}

const mcs::McsEntry* ReaderMac::uplink_entry(std::uint8_t addr) {
  if (ladder_ == nullptr) return nullptr;
  return &ladder_->rung(rung_of(addr));
}

void ReaderMac::observe_link(std::uint8_t addr, std::optional<common::SnrDb> snr_ref,
                             bool delivered) {
  if (ladder_ == nullptr) return;
  mcs::RateController& ctl = controller_for(addr);
  const std::size_t used = ctl.rung();  // the rung this poll actually ran at
  ++rung_polls_[used];
  McsMetrics::get()
      .rung_polls.with({{"rung", ladder_->rung(used).name}})
      .inc();
  const int step = ctl.observe(snr_ref, delivered);
  if (step > 0) {
    ++mcs_steps_up_;
    McsMetrics::get().steps_up.inc();
  } else if (step < 0) {
    ++mcs_steps_down_;
    McsMetrics::get().steps_down.inc();
  }
}

const mcs::RateController* ReaderMac::controller(std::uint8_t addr) const {
  const auto it = controllers_.find(addr);
  return it == controllers_.end() ? nullptr : &it->second;
}

}  // namespace vab::net
