#include "net/mac.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.hpp"

namespace vab::net {

namespace {
// ARQ accounting across all readers: the protocol's cost under impairment.
struct ArqMetrics {
  obs::Counter acks = obs::counter("net.arq.acks");
  obs::Counter duplicates = obs::counter("net.arq.duplicates");
  obs::Counter retries = obs::counter("net.arq.retries");
  obs::Counter timeouts = obs::counter("net.arq.timeouts");
  obs::Counter demotions = obs::counter("net.arq.demotions");

  static ArqMetrics& get() {
    static ArqMetrics* m = new ArqMetrics;  // leaked: read at exit
    return *m;
  }
};
}  // namespace

double MacTiming::slot_duration_s() const {
  // Frame: 4 header + payload + 2 CRC bytes, FM0 preamble/idle overhead
  // approximated as 10 ms, plus 20% margin.
  const double bits = (4.0 + static_cast<double>(slot_payload_bytes) + 2.0) * 8.0;
  return 1.2 * (bits / uplink_bitrate_bps + 0.010);
}

NodeMac::NodeMac(std::uint8_t address, MacTiming timing)
    : addr_(address), timing_(timing), slot_(address) {
  if (address == kBroadcastAddr)
    throw std::invalid_argument("broadcast is not a node address");
}

std::optional<NodeMac::Response> NodeMac::on_downlink(const Frame& dl,
                                                      const SensorReading& reading) {
  switch (dl.type) {
    case FrameType::kAssignSlot: {
      if (dl.addr != addr_ || dl.payload.size() != 1) return std::nullopt;
      slot_ = dl.payload[0];
      return std::nullopt;
    }
    case FrameType::kAck: {
      // Reader confirmed our outstanding seq: advance the window.
      if (dl.addr != addr_ || dl.payload.size() != 1) return std::nullopt;
      if (awaiting_ack_ && dl.payload[0] == seq_) {
        ++seq_;
        awaiting_ack_ = false;
      }
      return std::nullopt;
    }
    case FrameType::kQuery: {
      if (dl.addr != addr_ && dl.addr != kBroadcastAddr) return std::nullopt;
      Response r;
      r.frame.addr = addr_;
      r.frame.type = FrameType::kSensorReport;
      r.frame.seq = seq_;  // unchanged until ACKed: retransmissions dedupe on it
      r.frame.payload = encode_reading(reading);
      r.tx_offset_s = timing_.guard_s;
      awaiting_ack_ = true;
      return r;
    }
    case FrameType::kQueryAll: {
      if (dl.payload.size() != 1) return std::nullopt;
      const std::uint8_t n_slots = dl.payload[0];
      if (slot_ >= n_slots) return std::nullopt;
      Response r;
      r.frame.addr = addr_;
      r.frame.type = FrameType::kSensorReport;
      r.frame.seq = seq_;
      r.frame.payload = encode_reading(reading);
      r.tx_offset_s = timing_.guard_s +
                      static_cast<double>(slot_) * timing_.slot_duration_s();
      awaiting_ack_ = true;
      return r;
    }
    case FrameType::kSensorReport:
      return std::nullopt;  // uplink type; ignore on the downlink
  }
  return std::nullopt;
}

ReaderMac::ReaderMac(MacTiming timing, ArqConfig arq) : timing_(timing), arq_(arq) {}

Frame ReaderMac::make_query(std::uint8_t addr) {
  Frame f;
  f.addr = addr;
  f.type = FrameType::kQuery;
  f.seq = seq_++;
  return f;
}

Frame ReaderMac::make_round_announcement(std::uint8_t n_slots) {
  Frame f;
  f.addr = kBroadcastAddr;
  f.type = FrameType::kQueryAll;
  f.seq = seq_++;
  f.payload = {n_slots};
  return f;
}

Frame ReaderMac::make_slot_assignment(std::uint8_t addr, std::uint8_t slot) {
  Frame f;
  f.addr = addr;
  f.type = FrameType::kAssignSlot;
  f.seq = seq_++;
  f.payload = {slot};
  return f;
}

Frame ReaderMac::make_ack(std::uint8_t addr, std::uint8_t seq) {
  Frame f;
  f.addr = addr;
  f.type = FrameType::kAck;
  f.seq = seq_++;
  f.payload = {seq};
  ArqMetrics::get().acks.inc();
  return f;
}

ReaderMac::UplinkEvent ReaderMac::on_report(const Frame& report) {
  ArqState& st = arq_state_[report.addr];
  NodeStats& ns = stats_[report.addr];
  if (st.have_seq && st.last_seq == report.seq) {
    // Our ACK was lost and the node retransmitted: re-ACK, don't re-count.
    ++ns.duplicates;
    ArqMetrics::get().duplicates.inc();
    st.consecutive_misses = 0;
    return UplinkEvent::kDuplicate;
  }
  st.have_seq = true;
  st.last_seq = report.seq;
  st.consecutive_misses = 0;
  ++ns.delivered;
  return UplinkEvent::kDelivered;
}

void ReaderMac::on_uplink(std::uint8_t addr, bool crc_ok) {
  auto& s = stats_[addr];
  if (crc_ok)
    ++s.delivered;
  else
    ++s.corrupted;
}

ReaderMac::MissAction ReaderMac::on_miss(std::uint8_t addr) {
  ArqState& st = arq_state_[addr];
  NodeStats& ns = stats_[addr];
  ++st.consecutive_misses;
  ++ns.timeouts;
  ArqMetrics::get().timeouts.inc();
  if (st.consecutive_misses > arq_.demote_after_misses) return MissAction::kDemote;
  ++ns.retries;
  ArqMetrics::get().retries.inc();
  return MissAction::kRetry;
}

std::size_t ReaderMac::backoff_slots(std::uint8_t addr) const {
  const auto it = arq_state_.find(addr);
  const std::size_t misses = it == arq_state_.end() ? 0 : it->second.consecutive_misses;
  if (misses == 0) return 0;
  // base * 2^(misses-1), saturating at the ceiling without overflow.
  std::size_t slots = std::max<std::size_t>(arq_.backoff_base_slots, 1);
  for (std::size_t i = 1; i < misses && slots < arq_.backoff_ceiling_slots; ++i)
    slots *= 2;
  return std::min(slots, arq_.backoff_ceiling_slots);
}

void ReaderMac::demote(std::uint8_t addr) {
  arq_state_.erase(addr);
  ++stats_[addr].demotions;
  ArqMetrics::get().demotions.inc();
}

}  // namespace vab::net
