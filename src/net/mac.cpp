#include "net/mac.hpp"

#include <stdexcept>

namespace vab::net {

double MacTiming::slot_duration_s() const {
  // Frame: 4 header + payload + 2 CRC bytes, FM0 preamble/idle overhead
  // approximated as 10 ms, plus 20% margin.
  const double bits = (4.0 + slot_payload_bytes + 2.0) * 8.0;
  return 1.2 * (bits / uplink_bitrate_bps + 0.010);
}

NodeMac::NodeMac(std::uint8_t address, MacTiming timing)
    : addr_(address), timing_(timing), slot_(address) {
  if (address == kBroadcastAddr) throw std::invalid_argument("broadcast is not a node address");
}

std::optional<NodeMac::Response> NodeMac::on_downlink(const Frame& dl,
                                                      const SensorReading& reading) {
  switch (dl.type) {
    case FrameType::kAssignSlot: {
      if (dl.addr != addr_ || dl.payload.size() != 1) return std::nullopt;
      slot_ = dl.payload[0];
      return std::nullopt;
    }
    case FrameType::kQuery: {
      if (dl.addr != addr_ && dl.addr != kBroadcastAddr) return std::nullopt;
      Response r;
      r.frame.addr = addr_;
      r.frame.type = FrameType::kSensorReport;
      r.frame.seq = seq_++;
      r.frame.payload = encode_reading(reading);
      r.tx_offset_s = timing_.guard_s;
      return r;
    }
    case FrameType::kQueryAll: {
      if (dl.payload.size() != 1) return std::nullopt;
      const std::uint8_t n_slots = dl.payload[0];
      if (slot_ >= n_slots) return std::nullopt;
      Response r;
      r.frame.addr = addr_;
      r.frame.type = FrameType::kSensorReport;
      r.frame.seq = seq_++;
      r.frame.payload = encode_reading(reading);
      r.tx_offset_s = timing_.guard_s +
                      static_cast<double>(slot_) * timing_.slot_duration_s();
      return r;
    }
    case FrameType::kSensorReport:
    case FrameType::kAck:
      return std::nullopt;  // uplink types; ignore on the downlink
  }
  return std::nullopt;
}

ReaderMac::ReaderMac(MacTiming timing) : timing_(timing) {}

Frame ReaderMac::make_query(std::uint8_t addr) {
  Frame f;
  f.addr = addr;
  f.type = FrameType::kQuery;
  f.seq = seq_++;
  return f;
}

Frame ReaderMac::make_round_announcement(std::uint8_t n_slots) {
  Frame f;
  f.addr = kBroadcastAddr;
  f.type = FrameType::kQueryAll;
  f.seq = seq_++;
  f.payload = {n_slots};
  return f;
}

Frame ReaderMac::make_slot_assignment(std::uint8_t addr, std::uint8_t slot) {
  Frame f;
  f.addr = addr;
  f.type = FrameType::kAssignSlot;
  f.seq = seq_++;
  f.payload = {slot};
  return f;
}

void ReaderMac::on_uplink(std::uint8_t addr, bool crc_ok) {
  auto& s = stats_[addr];
  if (crc_ok)
    ++s.delivered;
  else
    ++s.corrupted;
}

}  // namespace vab::net
