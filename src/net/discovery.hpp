// Slotted-Aloha node discovery with an adaptive frame size (Q algorithm).
//
// The TDMA inventory (mac.hpp) assumes the reader knows every node address.
// After deployment it does not: nodes are discovered with framed slotted
// Aloha, RFID-style. The reader announces a frame of 2^Q slots; each
// undiscovered node picks a slot uniformly at random and backscatters its
// address there. Singleton slots are acknowledged (the node then goes
// quiet); collisions and empties drive Q up or down. Backscatter cannot
// carrier-sense, so collision resolution must live entirely at the reader —
// exactly why the Gen2 shape fits here.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "fault/fault.hpp"

namespace vab::net {

struct DiscoveryConfig {
  std::uint8_t initial_q = 2;      ///< first frame has 2^Q slots
  std::uint8_t max_q = 8;
  /// Q adaptation weights (Gen2-style floating Qfp).
  double q_step_up = 0.35;         ///< added per collision slot
  double q_step_down = 0.25;       ///< subtracted per empty slot
  std::size_t max_rounds = 64;
  /// Probability that a singleton reply is lost to channel errors.
  double reply_loss_prob = 0.0;
  /// Optional impairment hook: burst reply loss (Gilbert–Elliott) on
  /// singleton replies and wake-misses that keep a node out of a round.
  /// Null (the default) is bit-identical to pre-fault behaviour — the
  /// injector draws from its own stream, never from the discovery Rng.
  fault::FaultInjector* fault = nullptr;
};

enum class SlotOutcome : std::uint8_t { kEmpty, kSingleton, kCollision };

struct DiscoveryRound {
  std::uint8_t q = 0;
  std::size_t slots = 0;
  std::size_t empties = 0;
  std::size_t singletons = 0;
  std::size_t collisions = 0;
  std::vector<std::uint8_t> discovered;  ///< addresses ack'd this round
};

struct DiscoveryResult {
  std::vector<DiscoveryRound> rounds;
  std::set<std::uint8_t> discovered;
  std::size_t total_slots = 0;
  bool complete = false;  ///< every node found within max_rounds

  double slots_per_node() const {
    return discovered.empty()
               ? 0.0
               : static_cast<double>(total_slots) /
                 static_cast<double>(discovered.size());
  }
};

/// Simulates the discovery protocol over a population of node addresses.
/// Channel imperfections enter via `cfg.reply_loss_prob`.
DiscoveryResult run_discovery(const std::vector<std::uint8_t>& population,
                              const DiscoveryConfig& cfg, common::Rng& rng);

/// Expected efficiency of framed slotted Aloha at the optimum (frame size
/// equal to population): 1/e singletons per slot.
inline constexpr double kAlohaOptimalEfficiency = 0.3679;

}  // namespace vab::net
