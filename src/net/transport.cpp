#include "net/transport.hpp"

namespace vab::net {

bool IidLossTransport::downlink_delivered(std::uint8_t /*addr*/, common::Rng& /*rng*/) {
  // The pre-seam inventory never drew for the query downlink; keeping this
  // draw-free preserves bit-identity of every seeded inventory.
  return true;
}

bool IidLossTransport::uplink_delivered(std::uint8_t /*addr*/, bytes& /*wire*/,
                                        common::Rng& rng) {
  // Always draw (even at probability zero): the historical code called
  // rng.coin(reply_loss_prob) unconditionally, and seeded streams must not
  // shift under the refactor.
  return !rng.coin(reply_loss_prob_);
}

bool IidLossTransport::ack_delivered(std::uint8_t /*addr*/, common::Rng& rng) {
  return !rng.coin(ack_loss_prob_);
}

}  // namespace vab::net
