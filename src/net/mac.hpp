// Reader-coordinated MAC.
//
// Backscatter nodes cannot carrier-sense (they have no receiver chain beyond
// an envelope detector) and cannot initiate transmissions (they need the
// reader's carrier to reflect). The MAC is therefore reader-driven, like
// RFID inventory: the reader either polls one address (kQuery) or announces
// a TDMA round (kQueryAll) in which node i backscatters in slot i.
//
// Delivery guarantees ride on a stop-and-wait ARQ per node: the reader ACKs
// every decoded report (kAck), the node advances its sequence number only on
// ACK and otherwise retransmits the same seq, and the reader dedupes on seq
// so a lost ACK cannot double-count a reading. Misses are retried with
// exponential backoff up to a budget; a node missing too many consecutive
// polls is demoted back to discovery instead of stalling the inventory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "net/app.hpp"
#include "net/frame.hpp"
#include "net/mcs/adapt.hpp"

namespace vab::net {

struct MacTiming {
  double downlink_bitrate_bps = 80.0;  ///< PIE is slow; nodes decode passively
  double uplink_bitrate_bps = 500.0;
  /// Guard time between downlink end and the first uplink slot, covering the
  /// worst-case round-trip propagation (e.g. 2*500 m / 1500 m/s).
  double guard_s = 0.7;
  std::size_t slot_payload_bytes = 12;  ///< frame payload budget per slot

  /// Uplink slot duration in seconds (frame wire bits / bitrate + margin).
  double slot_duration_s() const;
  /// Reader-side reply timeout for one poll: the slot plus half a slot of
  /// tolerance. Replies skewed past this window count as misses.
  double reply_timeout_s() const { return 1.5 * slot_duration_s(); }
};

/// Retransmission policy for the reader-driven ARQ.
struct ArqConfig {
  std::size_t max_retries = 6;          ///< extra attempts per report after the first
  std::size_t backoff_base_slots = 1;   ///< backoff after the first miss, in slots
  std::size_t backoff_ceiling_slots = 8;  ///< exponential backoff saturates here
  std::size_t demote_after_misses = 12;  ///< consecutive misses before re-discovery
};

/// Node-side MAC state machine: consumes parsed downlink frames, produces
/// uplink frames scheduled at an offset from the downlink end.
class NodeMac {
 public:
  NodeMac(std::uint8_t address, MacTiming timing);

  struct Response {
    Frame frame;
    double tx_offset_s = 0.0;  ///< when to start backscattering, after downlink end
  };

  /// Handles a downlink frame; returns the uplink response, if any. A
  /// repeated query without an intervening ACK retransmits the same seq
  /// (stop-and-wait: the reader dedupes duplicates on it).
  std::optional<Response> on_downlink(const Frame& downlink,
                                      const SensorReading& reading);

  std::uint8_t address() const { return addr_; }
  std::uint8_t tdma_slot() const { return slot_; }
  std::uint8_t next_seq() const { return seq_; }
  /// True while a report is outstanding (sent but not yet ACKed).
  bool awaiting_ack() const { return awaiting_ack_; }

  /// Opts this node into MCS commands: queries may carry a rung index, and
  /// the node reconfigures its modem/FEC state when the commanded rung
  /// changes (the dragonradio reconfigure-on-change pattern). Without this
  /// call, MCS bytes in a query are ignored and behaviour is unchanged.
  void enable_mcs(const mcs::McsLadder& ladder);
  bool mcs_enabled() const { return ladder_ != nullptr; }
  std::size_t current_rung() const { return rung_; }
  /// Modem/FEC reconfigurations performed (counted only on rung *change*).
  std::size_t reconfigures() const { return reconfigures_; }
  const phy::PhyConfig& phy_config() const { return phy_cfg_; }
  const phy::FecConfig& fec_config() const { return fec_cfg_; }

 private:
  void reconfigure(std::size_t rung);

  std::uint8_t addr_;
  MacTiming timing_;
  std::uint8_t slot_;  ///< TDMA slot index; defaults to address
  std::uint8_t seq_ = 0;
  bool awaiting_ack_ = false;
  const mcs::McsLadder* ladder_ = nullptr;
  std::size_t rung_ = 0;
  std::size_t reconfigures_ = 0;
  phy::PhyConfig phy_cfg_;
  phy::FecConfig fec_cfg_;
};

/// Reader-side MAC: issues queries, assigns slots, ACKs reports, schedules
/// retries with exponential backoff, and tracks per-node delivery
/// statistics across rounds.
class ReaderMac {
 public:
  explicit ReaderMac(MacTiming timing, ArqConfig arq = {});

  /// Downlink frame polling a single node.
  Frame make_query(std::uint8_t addr);
  /// Downlink frame starting a TDMA round for `n_slots` nodes.
  Frame make_round_announcement(std::uint8_t n_slots);
  /// Downlink frame assigning `slot` to `addr`.
  Frame make_slot_assignment(std::uint8_t addr, std::uint8_t slot);
  /// Downlink frame acknowledging receipt of `seq` from `addr`.
  Frame make_ack(std::uint8_t addr, std::uint8_t seq);

  /// How an uplink event advanced the per-node ARQ state.
  enum class UplinkEvent : std::uint8_t {
    kDelivered,  ///< new report accepted (send ACK)
    kDuplicate,  ///< same seq as an already-ACKed report (re-ACK, don't count)
    kCorrupt,    ///< CRC failure: treated as a miss
  };

  /// What the reader should do after a miss (timeout or corrupt reply).
  enum class MissAction : std::uint8_t {
    kRetry,   ///< poll again after `backoff_slots()` slots
    kDemote,  ///< give the node up to re-discovery
  };

  /// Classifies a decoded report frame against the ARQ state and returns
  /// the event; on kDelivered/kDuplicate the caller sends `make_ack`.
  UplinkEvent on_report(const Frame& report);

  /// Records an uplink result for statistics (corrupt replies feed the
  /// retry path via `on_miss`).
  void on_uplink(std::uint8_t addr, bool crc_ok);

  /// Registers a miss (reply timeout or CRC failure) for `addr` and
  /// advances retries/backoff. Returns the action the schedule should take.
  MissAction on_miss(std::uint8_t addr);

  /// Current backoff delay for `addr`, in uplink slots (exponential in the
  /// consecutive-miss count, saturating at the ceiling).
  std::size_t backoff_slots(std::uint8_t addr) const;

  /// Forgets ARQ state for a demoted node (it will be re-discovered).
  void demote(std::uint8_t addr);

  struct NodeStats {
    std::size_t delivered = 0;
    std::size_t corrupted = 0;
    std::size_t duplicates = 0;
    std::size_t retries = 0;
    std::size_t timeouts = 0;
    std::size_t demotions = 0;
    double delivery_rate() const {
      const std::size_t total = delivered + corrupted;
      return total ? static_cast<double>(delivered) / static_cast<double>(total) : 0.0;
    }
  };

  const std::map<std::uint8_t, NodeStats>& stats() const { return stats_; }
  const MacTiming& timing() const { return timing_; }
  const ArqConfig& arq() const { return arq_; }

  /// Turns on per-node rate adaptation: queries carry the commanded rung,
  /// `observe_link` feeds each node's RateController, and `uplink_entry`
  /// exposes the rung the transport should evaluate. Without this call the
  /// reader is fixed-rate and wire format / statistics are unchanged.
  void enable_mcs(const mcs::McsLadder& ladder, mcs::AdaptConfig adapt = {});
  bool mcs_enabled() const { return ladder_ != nullptr; }
  /// Rung currently commanded for `addr` (creates the controller lazily at
  /// the adapt config's start rung).
  std::size_t rung_of(std::uint8_t addr);
  /// Ladder entry for `addr`'s next uplink, or nullptr when MCS is off.
  const mcs::McsEntry* uplink_entry(std::uint8_t addr);
  /// Feeds one poll outcome (and the transport's SNR measurement, if any)
  /// into `addr`'s rate controller; steps the rung when the controller
  /// crosses a threshold. Per-rung residency and step counts land in obs.
  void observe_link(std::uint8_t addr, std::optional<common::SnrDb> snr_ref,
                    bool delivered);
  std::size_t mcs_steps_up() const { return mcs_steps_up_; }
  std::size_t mcs_steps_down() const { return mcs_steps_down_; }
  /// Polls observed per rung index, across all nodes.
  const std::map<std::size_t, std::size_t>& rung_polls() const {
    return rung_polls_;
  }
  /// Read-only view of a node's controller (nullptr before first contact).
  const mcs::RateController* controller(std::uint8_t addr) const;

 private:
  struct ArqState {
    bool have_seq = false;
    std::uint8_t last_seq = 0;        ///< last ACKed sequence number
    std::size_t consecutive_misses = 0;
  };

  mcs::RateController& controller_for(std::uint8_t addr);

  MacTiming timing_;
  ArqConfig arq_;
  std::uint8_t seq_ = 0;
  std::map<std::uint8_t, NodeStats> stats_;
  std::map<std::uint8_t, ArqState> arq_state_;
  const mcs::McsLadder* ladder_ = nullptr;
  mcs::AdaptConfig adapt_;
  std::map<std::uint8_t, mcs::RateController> controllers_;
  std::map<std::size_t, std::size_t> rung_polls_;
  std::size_t mcs_steps_up_ = 0;
  std::size_t mcs_steps_down_ = 0;
};

}  // namespace vab::net
