// Reader-coordinated MAC.
//
// Backscatter nodes cannot carrier-sense (they have no receiver chain beyond
// an envelope detector) and cannot initiate transmissions (they need the
// reader's carrier to reflect). The MAC is therefore reader-driven, like
// RFID inventory: the reader either polls one address (kQuery) or announces
// a TDMA round (kQueryAll) in which node i backscatters in slot i.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "net/app.hpp"
#include "net/frame.hpp"

namespace vab::net {

struct MacTiming {
  double downlink_bitrate_bps = 80.0;  ///< PIE is slow; nodes decode passively
  double uplink_bitrate_bps = 500.0;
  /// Guard time between downlink end and the first uplink slot, covering the
  /// worst-case round-trip propagation (e.g. 2*500 m / 1500 m/s).
  double guard_s = 0.7;
  double slot_payload_bytes = 12;      ///< frame payload budget per slot

  /// Uplink slot duration in seconds (frame wire bits / bitrate + margin).
  double slot_duration_s() const;
};

/// Node-side MAC state machine: consumes parsed downlink frames, produces
/// uplink frames scheduled at an offset from the downlink end.
class NodeMac {
 public:
  NodeMac(std::uint8_t address, MacTiming timing);

  struct Response {
    Frame frame;
    double tx_offset_s = 0.0;  ///< when to start backscattering, after downlink end
  };

  /// Handles a downlink frame; returns the uplink response, if any.
  std::optional<Response> on_downlink(const Frame& downlink, const SensorReading& reading);

  std::uint8_t address() const { return addr_; }
  std::uint8_t tdma_slot() const { return slot_; }
  std::uint8_t next_seq() const { return seq_; }

 private:
  std::uint8_t addr_;
  MacTiming timing_;
  std::uint8_t slot_;  ///< TDMA slot index; defaults to address
  std::uint8_t seq_ = 0;
};

/// Reader-side MAC: issues queries, assigns slots, tracks per-node delivery
/// statistics across rounds.
class ReaderMac {
 public:
  explicit ReaderMac(MacTiming timing);

  /// Downlink frame polling a single node.
  Frame make_query(std::uint8_t addr);
  /// Downlink frame starting a TDMA round for `n_slots` nodes.
  Frame make_round_announcement(std::uint8_t n_slots);
  /// Downlink frame assigning `slot` to `addr`.
  Frame make_slot_assignment(std::uint8_t addr, std::uint8_t slot);

  /// Records an uplink result for statistics.
  void on_uplink(std::uint8_t addr, bool crc_ok);

  struct NodeStats {
    std::size_t delivered = 0;
    std::size_t corrupted = 0;
    double delivery_rate() const {
      const std::size_t total = delivered + corrupted;
      return total ? static_cast<double>(delivered) / static_cast<double>(total) : 0.0;
    }
  };

  const std::map<std::uint8_t, NodeStats>& stats() const { return stats_; }
  const MacTiming& timing() const { return timing_; }

 private:
  MacTiming timing_;
  std::uint8_t seq_ = 0;
  std::map<std::uint8_t, NodeStats> stats_;
};

}  // namespace vab::net
