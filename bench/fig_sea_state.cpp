// Extension bench — sea-state robustness: waveform trials under surface-wave
// motion (time-varying multipath) and rising wind noise. Stresses the
// preamble-trained equalizer with channels that drift within a frame.
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "sim/montecarlo.hpp"
#include "sim/scenario.hpp"
#include "sim/waveform_sim.hpp"

int main(int argc, char** argv) {
  using namespace vab;
  const auto cfg = common::Config::from_args(argc, argv);
  bench::banner("EXT-2", "Sea-state robustness",
                "field trials span sea states; the link must ride surface motion");

  const auto trials = static_cast<std::size_t>(cfg.get_int("trials", 3));
  common::Rng rng(static_cast<std::uint64_t>(cfg.get_int("seed", 22)));

  common::Table t({"wave_amp_m", "wind_mps", "frames_ok", "ber", "mean_snr_db"});
  for (double wave : {0.0, 0.1, 0.3}) {
    for (double wind : {3.0, 10.0}) {
      sim::Scenario s = sim::vab_ocean_scenario();
      s.range_m = cfg.get_double("range_m", 150.0);
      s.env.fading_sigma_db = 0.0;
      s.env.noise.wind_speed_mps = wind;
      s.env.multipath.surface_loss_db = 2.0 + wave * 8.0;  // rougher = lossier
      s.env.surface_wave_amplitude_m = wave;
      s.env.surface_wave_period_s = 5.0;
      common::Rng run_rng = rng.child(static_cast<std::uint64_t>(wave * 100 + wind));
      sim::WaveformStats stats;
      stats.trials = trials;
      for (std::size_t k = 0; k < trials; ++k) {
        common::Rng trial_rng = run_rng.child(k);
        sim::WaveformSimulator wsim(s, trial_rng);
        const auto res = wsim.run_trial(trial_rng.random_bits(64));
        stats.total_bits += 64;
        stats.bit_errors += res.bit_errors;
        if (res.demod.sync_found) {
          ++stats.frames_synced;
          stats.mean_snr_db += res.demod.snr_db;
        }
        if (res.frame_ok) ++stats.frames_ok;
      }
      if (stats.frames_synced)
        stats.mean_snr_db /= static_cast<double>(stats.frames_synced);
      t.add_row({common::Table::num(wave, 1), common::Table::num(wind, 0),
                 std::to_string(stats.frames_ok) + "/" + std::to_string(trials),
                 common::Table::sci(stats.ber()),
                 common::Table::num(stats.mean_snr_db, 1)});
    }
  }
  bench::emit(t, cfg);
  return 0;
}
