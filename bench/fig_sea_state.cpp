// Extension bench — sea-state robustness: waveform trials under surface-wave
// motion (time-varying multipath) and rising wind noise. Stresses the
// preamble-trained equalizer with channels that drift within a frame.
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "sim/montecarlo.hpp"
#include "sim/scenario.hpp"
#include "sim/waveform_sim.hpp"

int main(int argc, char** argv) {
  using namespace vab;
  const auto cfg = common::Config::from_args(argc, argv);
  bench::banner("EXT-2", "Sea-state robustness",
                "field trials span sea states; the link must ride surface motion");

  const auto trials = static_cast<std::size_t>(cfg.get_int("trials", 3));
  common::Rng rng(static_cast<std::uint64_t>(cfg.get_int("seed", 22)));
  bench::init_threads(cfg);
  bench::Stopwatch sw;

  // All (sea-state, trial) pairs run as one flat batch over the engine.
  struct Condition {
    double wave, wind;
  };
  std::vector<Condition> conditions;
  std::vector<sim::WaveformJob> jobs;
  for (double wave : {0.0, 0.1, 0.3}) {
    for (double wind : {3.0, 10.0}) {
      sim::Scenario s = sim::vab_ocean_scenario();
      s.range_m = cfg.get_double("range_m", 150.0);
      s.env.fading_sigma_db = 0.0;
      s.env.noise.wind_speed_mps = wind;
      s.env.multipath.surface_loss_db = 2.0 + wave * 8.0;  // rougher = lossier
      s.env.surface_wave_amplitude_m = wave;
      s.env.surface_wave_period_s = 5.0;
      sim::WaveformJob j;
      j.scenario = std::move(s);
      j.trials = trials;
      j.payload_bits = 64;
      j.rng = rng.child(static_cast<std::uint64_t>(wave * 100 + wind));
      jobs.push_back(std::move(j));
      conditions.push_back({wave, wind});
    }
  }
  const auto all_stats = sim::run_waveform_batch(jobs);

  common::Table t({"wave_amp_m", "wind_mps", "frames_ok", "ber", "mean_snr_db"});
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& stats = all_stats[i];
    t.add_row({common::Table::num(conditions[i].wave, 1),
               common::Table::num(conditions[i].wind, 0),
               std::to_string(stats.frames_ok) + "/" + std::to_string(trials),
               common::Table::sci(stats.ber()),
               common::Table::num(stats.mean_snr_db, 1)});
  }
  bench::emit(t, cfg);
  bench::emit_timing("EXT-2", "waveform_batch", sw.seconds(), jobs.size() * trials);
  return 0;
}
