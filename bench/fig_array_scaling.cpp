// E3 — Range and SNR vs number of Van Atta elements: the ~N^2 retro gain
// converts into range through the spreading law.
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "sim/linkbudget.hpp"
#include "sim/scenario.hpp"

int main(int argc, char** argv) {
  using namespace vab;
  const auto cfg = common::Config::from_args(argc, argv);
  bench::banner("E3", "Array-size scaling",
                "retro gain ~ N^2; range grows with element count");

  const auto trials = static_cast<std::size_t>(cfg.get_int("trials", 200));
  common::Rng rng(static_cast<std::uint64_t>(cfg.get_int("seed", 3)));
  const double ref_range = cfg.get_double("range_m", 200.0);
  bench::init_threads(cfg);
  bench::Stopwatch sw;

  common::Table t({"elements", "retro_gain_db", "snr_at_200m_db", "max_range_m_ber1e-3"});
  for (std::size_t n : {1u, 2u, 4u, 6u, 8u, 12u, 16u}) {
    sim::Scenario s = sim::vab_river_scenario();
    s.node.array.n_elements = n;
    if (n == 1) s.node.array.mode = vanatta::ArrayMode::kSingleElement;
    const sim::LinkBudget lb(s);
    const vanatta::VanAttaArray arr(s.node.array);
    common::Rng local = rng.child(n);
    t.add_row({std::to_string(n),
               common::Table::num(arr.monostatic_gain_db(0.0, s.phy.carrier_hz), 1),
               common::Table::num(
                   lb.evaluate(common::Meters{ref_range}).snr_chip_db.raw(), 1),
               common::Table::num(lb.max_range(1e-3, trials, local).raw(), 0)});
  }
  bench::emit(t, cfg);
  bench::emit_timing("E3", "max_range_bisect", sw.seconds(), 7 * 26 * trials);
  return 0;
}
