// Extension bench — coded vs uncoded link: Hamming(7,4)+interleaver at the
// range edge. The code costs 10log10(7/4) = 2.4 dB of chip energy (same
// data rate -> 7/4 chip rate) and buys single-error-per-block correction;
// the crossover sits where raw BER enters the waterfall.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "phy/ber.hpp"
#include "phy/coding.hpp"
#include "phy/fec.hpp"
#include "sim/linkbudget.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace vab;

// Simulates data-bit BER through the codec at a given raw channel BER.
// Packets fan out over the parallel engine, one child stream per packet, so
// the result is bit-identical for any thread count.
double coded_ber(double raw_ber, std::size_t data_bits, std::size_t packets,
                 const common::Rng& rng) {
  std::vector<std::size_t> packet_errors(packets, 0);
  common::parallel_for(0, packets, [&](std::size_t p) {
    phy::FrameCodec codec;
    common::Rng pkt_rng = rng.child(p);
    const bitvec data = pkt_rng.random_bits(data_bits);
    bitvec coded = codec.encode(data);
    for (auto& b : coded)
      if (pkt_rng.coin(raw_ber)) b ^= 1;
    std::size_t corrected = 0;
    const bitvec decoded = codec.decode(coded, data_bits, corrected);
    packet_errors[p] = phy::hamming_distance(decoded, data);
  });
  std::size_t errors = 0;
  for (std::size_t e : packet_errors) errors += e;
  return static_cast<double>(errors) / static_cast<double>(packets * data_bits);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vab;
  const auto cfg = common::Config::from_args(argc, argv);
  bench::banner("EXT-3", "FEC at the range edge",
                "Hamming(7,4)+interleaving extends the usable range past the waterfall");

  common::Rng rng(static_cast<std::uint64_t>(cfg.get_int("seed", 23)));
  const auto packets = static_cast<std::size_t>(cfg.get_int("packets", 200));
  bench::init_threads(cfg);
  bench::Stopwatch sw;

  // Range sweep: uncoded BER from the link budget; coded BER at the same
  // data rate pays the 7/4 bandwidth penalty in chip SNR.
  const sim::LinkBudget lb(sim::vab_river_scenario());
  const double rate_penalty_db = 10.0 * std::log10(7.0 / 4.0);

  common::Table t({"range_m", "uncoded_ber", "coded_raw_ber", "coded_data_ber",
                   "verdict"});
  for (double r : {250.0, 300.0, 350.0, 400.0, 450.0}) {
    const auto clean = lb.evaluate(common::Meters{r});
    const double snr_coded_db = clean.snr_chip_db.raw() - rate_penalty_db;
    const double raw_coded =
        phy::ber_fm0(std::pow(10.0, snr_coded_db / 10.0));
    common::Rng local = rng.child(static_cast<std::uint64_t>(r));
    const double data_ber = coded_ber(raw_coded, 64, packets, local);
    t.add_row({common::Table::num(r, 0), common::Table::sci(clean.ber),
               common::Table::sci(raw_coded), common::Table::sci(data_ber),
               data_ber < clean.ber ? "coding wins" : "uncoded wins"});
  }
  bench::emit(t, cfg);
  bench::emit_timing("EXT-3", "coded_ber_packets", sw.seconds(), 5 * packets);
  return 0;
}
