// EXT-6 — Rate adaptation and anti-collision: adaptive MCS vs the fixed
// paper rate over an SNR sweep (goodput, delivery, Jain fairness), and the
// slotted Q-style MAC vs the flat SINR contention penalty over a density
// sweep of the four-reader fleet.
//
// Acceptance gates (exit code 3 on failure):
//  - adaptive goodput >= 1.5x fixed at the top sweep SNR, while matching
//    fixed delivery (within 2%) at the bottom rung's operating point;
//  - the slotted MAC delivers strictly more than the SINR-penalty model at
//    the dense sweep points (>= 50 contending nodes).
// Determinism gates: the telemetry sweep digest is printed and must be
// stable across re-runs, and the densest fleet point is re-run with the
// parallel engine pinned to 1, 2, and 8 threads — every replicate digest
// must match bit-for-bit (exit code 1 on mismatch). `budget_s=N` bounds the
// wall clock (exit code 2).
#include <algorithm>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "net/inventory.hpp"
#include "net/mcs/mcs.hpp"
#include "net/mcs/transport.hpp"
#include "sim/fleet/fleet.hpp"
#include "sim/scenario.hpp"

namespace {

std::string hex64(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << std::setfill('0') << std::setw(16) << v;
  return os.str();
}

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFULL;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Telemetry timing for the short-range EXT-6 deployment: a reasonable
/// downlink rate and guard so the uplink MCS actually dominates airtime
/// (the PIE 80 bps + 0.7 s guard default would mask the ladder entirely).
vab::net::MacTiming ext6_timing() {
  vab::net::MacTiming t;
  t.downlink_bitrate_bps = 500.0;
  t.guard_s = 0.1;
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vab;
  const auto cfg = common::Config::from_args(argc, argv);
  bench::banner("EXT6", "Adaptive MCS ladder + slotted anti-collision",
                "rate adaptation recovers throughput headroom; slotted "
                "acquisition outperforms flat SINR contention when dense");

  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 61));
  const auto cycles = static_cast<std::size_t>(cfg.get_int("cycles", 80));
  const auto n_nodes = static_cast<std::size_t>(cfg.get_int("nodes", 8));
  const auto replicates = static_cast<std::size_t>(cfg.get_int("replicates", 3));
  const double budget_s = cfg.get_double("budget_s", 0.0);
  const unsigned threads = bench::init_threads(cfg);
  common::Rng rng(seed);
  bench::Stopwatch total;

  const net::mcs::McsLadder ladder = net::mcs::McsLadder::default_ladder();

  // ---- Part A: SNR sweep, fixed paper rate vs adaptive ladder ------------
  const auto telemetry = [&](double snr_db, bool adaptive, std::uint64_t child) {
    net::InventoryConfig icfg;
    icfg.timing = ext6_timing();
    if (adaptive) icfg.ladder = &ladder;
    net::mcs::AnalyticMcsConfig tcfg;
    tcfg.snr_ref_db = snr_db;
    net::mcs::AnalyticMcsTransport tp(ladder, tcfg);
    std::vector<std::uint8_t> pop(n_nodes);
    for (std::size_t i = 0; i < n_nodes; ++i)
      pop[i] = static_cast<std::uint8_t>(i + 1);
    common::Rng run_rng = rng.child(child);
    return net::run_telemetry(pop, cycles, icfg, nullptr, run_rng, &tp);
  };

  // InventoryResult::delivery_ratio accumulates deliveries over all cycles;
  // normalise to a per-cycle delivery rate for the table and the gate.
  const auto del_rate = [&](const net::TelemetryResult& r) {
    return static_cast<double>(r.totals.delivered) /
           (static_cast<double>(n_nodes) * static_cast<double>(cycles));
  };

  const double low_snr = ladder.snr_for_delivery(0, 0.9, 96).raw();
  const std::vector<double> snr_sweep = {low_snr, 4.0, 8.0, 12.0,
                                         16.0,    20.0, 25.0};
  common::Table ta({"snr_db", "fixed_bps", "adapt_bps", "gain", "fixed_del",
                    "adapt_del", "jain", "steps", "reconf"});
  std::uint64_t tele_digest = 0xcbf29ce484222325ULL;
  double gain_at_top = 0.0;
  double fixed_del_low = 0.0, adapt_del_low = 0.0;
  for (std::size_t i = 0; i < snr_sweep.size(); ++i) {
    const double snr = snr_sweep[i];
    const auto fixed = telemetry(snr, false, 2 * i);
    const auto adapt = telemetry(snr, true, 2 * i + 1);
    const double gain = fixed.goodput_bps() > 0.0
                            ? adapt.goodput_bps() / fixed.goodput_bps()
                            : 0.0;
    if (i == snr_sweep.size() - 1) gain_at_top = gain;
    if (i == 0) {
      fixed_del_low = del_rate(fixed);
      adapt_del_low = del_rate(adapt);
    }
    tele_digest = fnv1a(tele_digest, adapt.totals.delivered);
    tele_digest = fnv1a(tele_digest, adapt.totals.polls);
    tele_digest = fnv1a(tele_digest, adapt.totals.mcs_steps_up);
    tele_digest = fnv1a(tele_digest, adapt.totals.mcs_steps_down);
    tele_digest = fnv1a(tele_digest, adapt.totals.reconfigures);
    for (const auto& [rung, polls] : adapt.totals.rung_polls) {
      tele_digest = fnv1a(tele_digest, rung);
      tele_digest = fnv1a(tele_digest, polls);
    }
    ta.add_row({common::Table::num(snr, 2),
                common::Table::num(fixed.goodput_bps(), 1),
                common::Table::num(adapt.goodput_bps(), 1),
                common::Table::num(gain, 2),
                common::Table::num(del_rate(fixed), 3),
                common::Table::num(del_rate(adapt), 3),
                common::Table::num(adapt.jain_fairness(), 3),
                std::to_string(adapt.totals.mcs_steps_up +
                               adapt.totals.mcs_steps_down),
                std::to_string(adapt.totals.reconfigures)});
  }
  bench::emit(ta, cfg);
  std::cout << "telemetry digest: " << hex64(tele_digest) << "\n\n";

  // ---- Part B: density sweep, SINR penalty vs slotted MAC ----------------
  const auto fleet_cfg = [&](std::size_t nodes, sim::fleet::MacMode mode) {
    sim::fleet::FleetConfig fc;
    fc.scenario = sim::vab_river_scenario();
    fc.scenario.env.fading_sigma_db = 0.0;
    fc.n_readers = 4;
    fc.n_nodes = nodes;
    fc.area_m = 900.0;  // typical link 300..550 m: inside the waterfall band
    fc.max_link_range_m = 550.0;
    fc.interference_range_m = 5000.0;
    fc.contention_penalty_db = 4.0;
    fc.inventory.max_polls = 64;
    fc.mac_mode = mode;
    fc.fidelity.mode = sim::fleet::FidelityMode::kBudgetOnly;
    return fc;
  };

  const std::vector<std::size_t> density = {24, 48, 72, 120, 192};
  common::Table tb({"nodes", "assigned", "pen_del", "slot_del", "slots",
                    "captures", "pen_digest", "slot_digest"});
  bool slotted_wins_dense = true;
  std::size_t dense_points = 0;
  sim::fleet::FleetConfig densest_slotted = fleet_cfg(density.back(),
                                                     sim::fleet::MacMode::kSlotted);
  for (std::size_t i = 0; i < density.size(); ++i) {
    const std::size_t nodes = density[i];
    std::uint64_t pen_digest = 0, slot_digest = 0;
    std::size_t assigned = 0, pen_del = 0, slot_del = 0, slots = 0, captures = 0;
    const auto pen_runs = sim::fleet::run_fleet_replicates(
        fleet_cfg(nodes, sim::fleet::MacMode::kSinrPenalty), replicates,
        rng.child(100 + i));
    const auto slot_runs = sim::fleet::run_fleet_replicates(
        fleet_cfg(nodes, sim::fleet::MacMode::kSlotted), replicates,
        rng.child(100 + i));
    for (std::size_t k = 0; k < replicates; ++k) {
      pen_digest = fnv1a(pen_digest, pen_runs[k].digest);
      slot_digest = fnv1a(slot_digest, slot_runs[k].digest);
      assigned += pen_runs[k].assigned;
      pen_del += pen_runs[k].delivered;
      slot_del += slot_runs[k].delivered;
      slots += slot_runs[k].slot_total;
      captures += slot_runs[k].slot_capture;
    }
    // >= 50 contending nodes: every reader contends with every other here,
    // so the whole assigned population is in contended windows.
    if (assigned >= 50 * replicates) {
      ++dense_points;
      slotted_wins_dense = slotted_wins_dense && slot_del > pen_del;
    }
    tb.add_row({std::to_string(nodes), std::to_string(assigned),
                std::to_string(pen_del), std::to_string(slot_del),
                std::to_string(slots), std::to_string(captures),
                hex64(pen_digest), hex64(slot_digest)});
  }
  bench::emit(tb, cfg);
  const double sweep_s = total.seconds();
  bench::emit_timing("EXT6", "rate_adapt_sweep", sweep_s,
                     snr_sweep.size() * 2 * cycles * n_nodes);

  // ---- Gates -------------------------------------------------------------
  bool identical = true;
  if (cfg.get_int("check_identity", 1) != 0) {
    std::vector<std::vector<std::uint64_t>> digests;
    for (const unsigned n : {1U, 2U, 8U}) {
      common::set_thread_count(n);
      const auto runs = sim::fleet::run_fleet_replicates(
          densest_slotted, replicates, rng.child(999));
      std::vector<std::uint64_t> d;
      d.reserve(runs.size());
      for (const auto& r : runs) d.push_back(r.digest);
      digests.push_back(std::move(d));
    }
    common::set_thread_count(threads);
    for (std::size_t i = 1; i < digests.size(); ++i)
      if (digests[i] != digests[0]) identical = false;
    std::cout << "thread identity (1/2/8 threads, " << densest_slotted.n_nodes
              << " nodes, slotted): "
              << (identical ? "bit-identical" : "MISMATCH") << "\n";
  }

  const bool goodput_gate = gain_at_top >= 1.5;
  const bool delivery_gate = adapt_del_low >= fixed_del_low - 0.02;
  const bool slotted_gate = dense_points > 0 && slotted_wins_dense;
  std::cout << "goodput gate (adaptive >= 1.5x fixed at "
            << common::Table::num(snr_sweep.back(), 1)
            << " dB): " << common::Table::num(gain_at_top, 2) << "x "
            << (goodput_gate ? "PASS" : "FAIL") << "\n";
  std::cout << "delivery gate (adaptive matches fixed at "
            << common::Table::num(low_snr, 2)
            << " dB): " << common::Table::num(adapt_del_low, 3) << " vs "
            << common::Table::num(fixed_del_low, 3) << " "
            << (delivery_gate ? "PASS" : "FAIL") << "\n";
  std::cout << "slotted gate (beats SINR penalty at " << dense_points
            << " dense points): " << (slotted_gate ? "PASS" : "FAIL") << "\n";

  if (budget_s > 0.0 && sweep_s > budget_s) {
    std::cout << "BUDGET EXCEEDED: sweep took " << common::Table::num(sweep_s, 2)
              << " s (budget " << common::Table::num(budget_s, 2) << " s)\n";
    return 2;
  }
  if (!identical) return 1;
  if (!(goodput_gate && delivery_gate && slotted_gate)) return 3;
  return 0;
}
