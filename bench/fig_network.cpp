// E12 — Multi-node network: TDMA inventory delivery rate and goodput vs
// node count and deployment radius (the coastal-monitoring application the
// paper motivates).
#include <iostream>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/system.hpp"
#include "sim/scenario.hpp"

int main(int argc, char** argv) {
  using namespace vab;
  const auto cfg = common::Config::from_args(argc, argv);
  bench::banner("E12", "Multi-node TDMA network",
                "coastal monitoring: tens of nodes served by one reader");

  const auto rounds = static_cast<std::size_t>(cfg.get_int("rounds", 100));
  common::Rng rng(static_cast<std::uint64_t>(cfg.get_int("seed", 12)));
  bench::init_threads(cfg);
  bench::Stopwatch sw;

  // Each (node-count, radius) configuration is a self-contained simulation
  // with its own child streams: fan the grid out, print rows in grid order.
  struct NetConfig {
    std::size_t n_nodes;
    double radius;
  };
  std::vector<NetConfig> grid;
  for (std::size_t n_nodes : {2u, 4u, 8u, 16u})
    for (double radius : {150.0, 300.0}) grid.push_back({n_nodes, radius});

  std::vector<core::NetworkResult> results(grid.size());
  common::parallel_for(0, grid.size(), [&](std::size_t g) {
    const std::size_t n_nodes = grid[g].n_nodes;
    const double radius = grid[g].radius;
    std::vector<core::NetworkNode> nodes;
    common::Rng geom = rng.child(n_nodes * 1000 + static_cast<std::uint64_t>(radius));
    for (std::size_t i = 0; i < n_nodes; ++i) {
      core::NetworkNode node;
      node.address = static_cast<std::uint8_t>(i);
      node.slot = static_cast<std::uint8_t>(i);
      node.range_m = geom.uniform(0.3 * radius, radius);
      node.orientation_rad = geom.uniform(-common::kPi / 4.0, common::kPi / 4.0);
      nodes.push_back(node);
    }
    core::NetworkSimulator net(sim::vab_river_scenario(), std::move(nodes));
    common::Rng run_rng = rng.child(n_nodes + static_cast<std::uint64_t>(radius) * 37);
    results[g] = net.run(rounds, 6, run_rng);
  });

  common::Table t({"nodes", "radius_m", "round_s", "delivery_rate", "goodput_bps"});
  std::size_t total_rounds = 0;
  for (std::size_t g = 0; g < grid.size(); ++g) {
    const auto& res = results[g];
    total_rounds += rounds;
    t.add_row({std::to_string(grid[g].n_nodes), common::Table::num(grid[g].radius, 0),
               common::Table::num(res.round_duration_s, 2),
               common::Table::num(res.delivery_rate(), 3),
               common::Table::num(res.goodput_bps, 1)});
  }
  bench::emit(t, cfg);
  bench::emit_timing("E12", "network_grid", sw.seconds(), total_rounds);
  return 0;
}
