// DSP microbenchmarks (google-benchmark): throughput of the kernels that
// dominate the reader's real-time budget.
#include <benchmark/benchmark.h>

#include "channel/noise.hpp"
#include "common/rng.hpp"
#include "dsp/correlate.hpp"
#include "dsp/fft.hpp"
#include "dsp/fir.hpp"
#include "dsp/mixer.hpp"
#include "dsp/simd/simd.hpp"
#include "dsp/workspace.hpp"
#include "phy/modem.hpp"
#include "sim/fleet/event_queue.hpp"
#include "sim/fleet/fleet.hpp"
#include "sim/fleet/medium.hpp"
#include "sim/scenario.hpp"
#include "sim/waveform_sim.hpp"

namespace {

using namespace vab;

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(1);
  cvec x(n);
  for (auto& v : x) v = rng.complex_gaussian();
  for (auto _ : state) {
    cvec y = x;
    dsp::fft_inplace(y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_FirFilterComplex(benchmark::State& state) {
  const auto taps = static_cast<std::size_t>(state.range(0));
  common::Rng rng(2);
  dsp::FirFilter f(dsp::design_lowpass(2500.0, 96000.0, taps));
  cvec x(8192);
  for (auto& v : x) v = rng.complex_gaussian();
  for (auto _ : state) {
    cvec y = f.process(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8192);
}
BENCHMARK(BM_FirFilterComplex)->Arg(63)->Arg(127)->Arg(255);

void BM_Downconvert(benchmark::State& state) {
  const rvec x = dsp::make_tone(18500.0, 96000.0, 65536);
  for (auto _ : state) {
    cvec y = dsp::downconvert(x, 18500.0, 96000.0);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 65536);
}
BENCHMARK(BM_Downconvert);

void BM_NoiseSynthesis(benchmark::State& state) {
  common::Rng rng(3);
  const channel::NoiseConditions cond{};
  for (auto _ : state) {
    rvec y = channel::synthesize_ambient_noise(65536, common::SampleRateHz{96000.0},
                                               cond, rng);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 65536);
}
BENCHMARK(BM_NoiseSynthesis);

// Sync-length correlation: the demodulator slides a ~360-sample preamble
// reference over a ~16k-sample baseband capture. Naive vs FFT overlap-save.
cvec corr_signal(std::size_t n, unsigned seed) {
  common::Rng rng(seed);
  cvec x(n);
  for (auto& v : x) v = rng.complex_gaussian();
  return x;
}

void BM_SlidingCorrelateNaive(benchmark::State& state) {
  const cvec sig = corr_signal(static_cast<std::size_t>(state.range(0)), 5);
  const cvec ref = corr_signal(static_cast<std::size_t>(state.range(1)), 6);
  for (auto _ : state) {
    cvec y = dsp::sliding_correlate_naive(sig, ref);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SlidingCorrelateNaive)->Args({16384, 360});

void BM_SlidingCorrelateFft(benchmark::State& state) {
  const cvec sig = corr_signal(static_cast<std::size_t>(state.range(0)), 5);
  const cvec ref = corr_signal(static_cast<std::size_t>(state.range(1)), 6);
  cvec y;
  for (auto _ : state) {
    dsp::sliding_correlate(sig, ref, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SlidingCorrelateFft)->Args({16384, 360});

void BM_NormalizedCorrelate(benchmark::State& state) {
  const cvec sig = corr_signal(16384, 7);
  const cvec ref = corr_signal(360, 8);
  rvec y;
  for (auto _ : state) {
    dsp::normalized_correlate(sig, ref, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 16384);
}
BENCHMARK(BM_NormalizedCorrelate);

void BM_FirDecimate(benchmark::State& state) {
  common::Rng rng(9);
  const rvec taps = dsp::design_lowpass(2500.0, 192000.0, 255,
                                        dsp::WindowType::kKaiser, 12.0);
  cvec x(131072);
  for (auto& v : x) v = rng.complex_gaussian();
  cvec y;
  for (auto _ : state) {
    dsp::fir_filter_decimate(taps, x, 24, 447, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(x.size()));
}
BENCHMARK(BM_FirDecimate);

// Scalar-forced A/B twins of the vectorized kernels: identical workloads with
// the dispatcher pinned to the reference ISA for the duration of the run.
// The ratio BM_X / BM_XScalar is the measured SIMD speedup on this machine;
// both twins sit in check_bench's watchlist so neither the vector nor the
// reference path can silently regress.
class ScalarForced {
 public:
  ScalarForced() { dsp::simd::force_isa(dsp::simd::Isa::kScalar); }
  ~ScalarForced() { dsp::simd::reset_isa(); }
  ScalarForced(const ScalarForced&) = delete;
  ScalarForced& operator=(const ScalarForced&) = delete;
};

void BM_FftScalar(benchmark::State& state) {
  const ScalarForced guard;
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(1);
  cvec x(n);
  for (auto& v : x) v = rng.complex_gaussian();
  for (auto _ : state) {
    cvec y = x;
    dsp::fft_inplace(y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FftScalar)->Arg(8192)->Arg(65536);

void BM_SlidingCorrelateNaiveScalar(benchmark::State& state) {
  const ScalarForced guard;
  const cvec sig = corr_signal(static_cast<std::size_t>(state.range(0)), 5);
  const cvec ref = corr_signal(static_cast<std::size_t>(state.range(1)), 6);
  for (auto _ : state) {
    cvec y = dsp::sliding_correlate_naive(sig, ref);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SlidingCorrelateNaiveScalar)->Args({16384, 360});

void BM_FirDecimateScalar(benchmark::State& state) {
  const ScalarForced guard;
  common::Rng rng(9);
  const rvec taps = dsp::design_lowpass(2500.0, 192000.0, 255,
                                        dsp::WindowType::kKaiser, 12.0);
  cvec x(131072);
  for (auto& v : x) v = rng.complex_gaussian();
  cvec y;
  for (auto _ : state) {
    dsp::fir_filter_decimate(taps, x, 24, 447, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(x.size()));
}
BENCHMARK(BM_FirDecimateScalar);

void BM_DownconvertScalar(benchmark::State& state) {
  const ScalarForced guard;
  const rvec x = dsp::make_tone(18500.0, 96000.0, 65536);
  for (auto _ : state) {
    cvec y = dsp::downconvert(x, 18500.0, 96000.0);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 65536);
}
BENCHMARK(BM_DownconvertScalar);

// End-to-end waveform trial (single thread): the unit of work every
// EXPERIMENTS sweep repeats thousands of times.
void BM_WaveformTrial(benchmark::State& state) {
  sim::Scenario sc;
  sc.range_m = 100.0;
  common::Rng rng(11);
  const bitvec payload = rng.random_bits(64);
  for (auto _ : state) {
    common::Rng trial_rng(12);
    sim::WaveformSimulator ws(sc, trial_rng);
    auto res = ws.run_trial(payload);
    benchmark::DoNotOptimize(&res);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_WaveformTrial);

void BM_WaveformTrialScalar(benchmark::State& state) {
  const ScalarForced guard;
  sim::Scenario sc;
  sc.range_m = 100.0;
  common::Rng rng(11);
  const bitvec payload = rng.random_bits(64);
  for (auto _ : state) {
    common::Rng trial_rng(12);
    sim::WaveformSimulator ws(sc, trial_rng);
    auto res = ws.run_trial(payload);
    benchmark::DoNotOptimize(&res);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_WaveformTrialScalar);

void BM_FullDemodulate(benchmark::State& state) {
  phy::PhyConfig cfg;
  cfg.fs_hz = 96000.0;
  common::Rng rng(4);
  const bitvec payload = rng.random_bits(64);
  phy::BackscatterModulator mod(cfg);
  const bitvec states = mod.switch_waveform(payload);
  const bitvec mask = mod.active_mask(payload.size());
  rvec x = dsp::make_tone(cfg.carrier_hz, cfg.fs_hz, states.size() + 1024);
  for (std::size_t i = 0; i < x.size(); ++i) {
    double coef = 1.0;
    if (i < states.size() && mask[i]) coef += 0.01 * (states[i] ? 1.0 : -1.0);
    x[i] *= coef;
  }
  phy::ReaderDemodulator demod(cfg);
  for (auto _ : state) {
    auto res = demod.demodulate(x, payload.size());
    benchmark::DoNotOptimize(&res);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(x.size()));
}
BENCHMARK(BM_FullDemodulate);

// Fleet-core kernels: the event queue, the spatial partition, and one
// budget-fidelity fleet run — the hot path of the node-count scaling sweep.
void BM_FleetEventQueue(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(13);
  std::vector<double> times(n);
  for (auto& t : times) t = rng.uniform(0.0, 1000.0);
  for (auto _ : state) {
    sim::fleet::EventQueue q;
    for (std::size_t i = 0; i < n; ++i)
      q.push(sim::fleet::Event{times[i], static_cast<std::uint32_t>(i), 0, 0});
    std::uint64_t acc = 0;
    while (auto ev = q.pop()) acc += ev->entity;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FleetEventQueue)->Arg(4096)->Arg(65536);

void BM_FleetGridQuery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(14);
  std::vector<sim::fleet::Position> pts(n);
  for (auto& p : pts) p = {rng.uniform(0.0, 2000.0), rng.uniform(0.0, 2000.0)};
  const sim::fleet::SpatialGrid grid(pts, common::Meters{50.0});
  std::vector<std::uint32_t> out;
  std::size_t probe = 0;
  for (auto _ : state) {
    grid.query(pts[probe % n], common::Meters{250.0}, out);
    benchmark::DoNotOptimize(out.data());
    ++probe;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FleetGridQuery)->Arg(10000)->Arg(100000);

void BM_FleetBudgetRun(benchmark::State& state) {
  sim::fleet::FleetConfig fc;
  fc.scenario = sim::vab_river_scenario();
  fc.n_nodes = static_cast<std::size_t>(state.range(0));
  fc.n_readers = 4;
  fc.area_m = 800.0;
  fc.fidelity.mode = sim::fleet::FidelityMode::kBudgetOnly;
  const common::Rng rng(15);
  for (auto _ : state) {
    auto res = sim::fleet::run_fleet(fc, rng);
    benchmark::DoNotOptimize(&res);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FleetBudgetRun)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
