// Extension bench — uplink line-code study: FM0 vs Miller-2/4/8.
//
// Measures (a) the fraction of data energy within the carrier-residue
// region near DC (lower = more robust to imperfect SIC) and (b) the noise
// bandwidth cost. Quantifies why FM0 is the paper's operating point and
// when Miller buys margin.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "dsp/fft.hpp"
#include "phy/fm0.hpp"
#include "phy/miller.hpp"

namespace {

using namespace vab;

// Fraction of one-sided spectral energy below `frac` of the chip rate.
double low_band_fraction(const rvec& levels, double frac_of_chip_rate) {
  cvec x(levels.size());
  for (std::size_t i = 0; i < levels.size(); ++i) x[i] = cplx{levels[i], 0.0};
  const cvec spec = dsp::fft(x);
  const std::size_t n = spec.size();
  const auto edge = static_cast<std::size_t>(frac_of_chip_rate * static_cast<double>(n));
  double low = 0.0, total = 0.0;
  for (std::size_t k = 1; k < n / 2; ++k) {
    const double p = std::norm(spec[k]);
    total += p;
    if (k < edge) low += p;
  }
  return low / total;
}

rvec to_levels(const bitvec& chips) {
  rvec lv(chips.size());
  for (std::size_t i = 0; i < chips.size(); ++i) lv[i] = chips[i] ? 1.0 : -1.0;
  return lv;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vab;
  const auto cfg = common::Config::from_args(argc, argv);
  bench::banner("EXT-1", "Uplink line codes: FM0 vs Miller",
                "FM0 pushes data off the carrier; "
                "Miller goes further at a bandwidth cost");

  common::Rng rng(static_cast<std::uint64_t>(cfg.get_int("seed", 21)));
  bench::init_threads(cfg);
  bench::Stopwatch sw;
  const bitvec bits = rng.random_bits(2048);
  const double bitrate = 500.0;

  common::Table t({"code", "chips_per_bit", "occupied_bw_hz",
                   "energy_within_50Hz_of_carrier_%", "rel_noise_bw_db"});
  struct Entry {
    const char* name;
    bitvec chips;
    double cpb;
  };
  std::vector<Entry> entries;
  entries.push_back({"FM0", phy::fm0_encode(bits), 2.0});
  for (unsigned m : {2u, 4u, 8u}) {
    static char names[3][16];
    std::snprintf(names[m / 4], sizeof(names[0]), "Miller-%u", m);
    entries.push_back({names[m / 4], phy::miller_encode(bits, m),
                       static_cast<double>(phy::miller_chips_per_bit(m))});
  }

  for (const auto& e : entries) {
    const double chip_rate = e.cpb * bitrate;
    // 50 Hz residue region as a fraction of the chip-sequence sample rate.
    const double frac = 50.0 / chip_rate;
    t.add_row({e.name, common::Table::num(e.cpb, 0),
               common::Table::num(chip_rate, 0),
               common::Table::num(100.0 * low_band_fraction(to_levels(e.chips), frac), 3),
               common::Table::num(10.0 * std::log10(e.cpb / 2.0), 1)});
  }
  bench::emit(t, cfg);
  bench::emit_timing("EXT-1", "line_code_spectra", sw.seconds(), entries.size());
  std::cout << "reading: Miller concentrates energy at the subcarrier, buying immunity\n"
               "to SIC residue near DC, at 10log10(M/1) dB more noise bandwidth.\n";
  return 0;
}
