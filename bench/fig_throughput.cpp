// E6 — Throughput vs range: achievable bitrate at BER 1e-3 as a function of
// distance (chip bandwidth trades against the noise floor in the link
// budget; multipath ISI bounds the chip rate in the waveform chain).
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "sim/linkbudget.hpp"
#include "sim/montecarlo.hpp"
#include "sim/scenario.hpp"

int main(int argc, char** argv) {
  using namespace vab;
  const auto cfg = common::Config::from_args(argc, argv);
  bench::banner("E6", "Throughput vs range",
                "hundreds of bps sustained to hundreds of meters");

  const auto trials = static_cast<std::size_t>(cfg.get_int("trials", 200));
  common::Rng rng(static_cast<std::uint64_t>(cfg.get_int("seed", 6)));
  bench::init_threads(cfg);
  bench::Stopwatch sw;

  const std::vector<double> bitrates{100, 200, 500, 1000, 2000};
  common::Table t(
      {"bitrate_bps", "max_range_m_ber1e-3", "snr_at_300m_db", "ber_at_300m"});
  for (std::size_t i = 0; i < bitrates.size(); ++i) {
    sim::Scenario s = sim::vab_river_scenario();
    s.phy.bitrate_bps = bitrates[i];
    const sim::LinkBudget lb(s);
    common::Rng local = rng.child(i);
    const auto at300 = lb.evaluate(common::Meters{300.0});
    t.add_row({common::Table::num(bitrates[i], 0),
               common::Table::num(lb.max_range(1e-3, trials, local).raw(), 0),
               common::Table::num(at300.snr_chip_db.raw(), 1),
               common::Table::sci(at300.ber)});
  }
  bench::emit(t, cfg);

  // Waveform cross-check: multipath ISI makes high chip rates worse than the
  // bandwidth-only link budget predicts. All (bitrate, trial) pairs fan out
  // as one flat batch.
  std::cout << "waveform ISI check @150 m (3 trials each):\n";
  const std::vector<double> wf_bitrates{200.0, 1000.0, 2000.0};
  std::vector<sim::WaveformJob> jobs;
  for (double b : wf_bitrates) {
    sim::WaveformJob j;
    j.scenario = sim::vab_river_scenario();
    j.scenario.phy.bitrate_bps = b;
    j.scenario.range_m = 150.0;
    j.scenario.env.fading_sigma_db = 0.0;
    j.trials = 3;
    j.payload_bits = 64;
    j.rng = rng.child(1000 + static_cast<std::uint64_t>(b));
    jobs.push_back(std::move(j));
  }
  const auto wf_stats = sim::run_waveform_batch(jobs);
  common::Table v({"bitrate_bps", "frames_ok", "ber"});
  for (std::size_t i = 0; i < wf_bitrates.size(); ++i) {
    const auto& stats = wf_stats[i];
    v.add_row({common::Table::num(wf_bitrates[i], 0),
               std::to_string(stats.frames_ok) + "/" + std::to_string(stats.trials),
               common::Table::sci(stats.ber())});
  }
  bench::emit(v, common::Config{});
  bench::emit_timing("E6", "bisect+waveform", sw.seconds(),
                     bitrates.size() * 26 * trials + jobs.size() * 3);
  return 0;
}
