// E10 — Reflection-coefficient modulation depth: what the load switch
// actually buys, across states and across the band, including switch
// parasitics. Also the polarity-vs-on-off scheme comparison at array level.
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "piezo/bvd.hpp"
#include "piezo/modulator.hpp"
#include "vanatta/array.hpp"

int main(int argc, char** argv) {
  using namespace vab;
  const auto cfg = common::Config::from_args(argc, argv);
  bench::banner("E10", "Load-modulation depth",
                "open/short switching yields near-full reflection swing at resonance");

  bench::init_threads(cfg);
  bench::Stopwatch sw;
  const piezo::BvdModel bvd =
      piezo::BvdModel::from_resonance(18500.0, 25.0, 0.3, 10e-9, 0.75);
  const double f0 = bvd.series_resonance_hz();
  const piezo::LoadModulator mod(bvd.impedance(f0));

  using piezo::LoadState;
  common::Table t({"state_pair", "modulation_depth", "static_leak"});
  const std::vector<std::pair<const char*, std::pair<LoadState, LoadState>>> pairs{
      {"open/short", {LoadState::kOpen, LoadState::kShort}},
      {"open/matched", {LoadState::kOpen, LoadState::kMatched}},
      {"short/matched", {LoadState::kShort, LoadState::kMatched}}};
  for (const auto& [name, st] : pairs) {
    t.add_row({name, common::Table::num(mod.modulation_depth(st.first, st.second, f0), 3),
               common::Table::num(mod.static_reflection(st.first, st.second, f0), 3)});
  }
  bench::emit(t, cfg);

  common::Table f({"freq_hz", "open_short_depth"});
  for (double fq : common::linspace(0.9 * f0, 1.1 * f0, 9))
    f.add_row({common::Table::num(fq, 0),
               common::Table::num(mod.modulation_depth(LoadState::kOpen,
                                                       LoadState::kShort, fq),
                                  3)});
  bench::emit(f, common::Config{});

  // Scheme comparison at the array level (the paper's polarity innovation).
  common::Table a({"scheme", "array_modulation_amplitude", "gain_over_onoff_db"});
  double onoff_amp = 0.0;
  for (auto [name, scheme] :
       {std::pair{"on/off", vanatta::ModulationScheme::kOnOff},
        std::pair{"polarity", vanatta::ModulationScheme::kPolarity}}) {
    vanatta::VanAttaConfig ac;
    ac.n_elements = 8;
    ac.scheme = scheme;
    const vanatta::VanAttaArray arr(ac);
    const double amp = arr.modulation_amplitude(0.0, 18500.0);
    if (scheme == vanatta::ModulationScheme::kOnOff) onoff_amp = amp;
    a.add_row({name, common::Table::num(amp, 3),
               common::Table::num(20.0 * std::log10(amp / onoff_amp), 1)});
  }
  bench::emit(a, common::Config{});
  bench::emit_timing("E10", "modulation_depth", sw.seconds(), 3 + 9 + 2);
  return 0;
}
