// CAMPAIGN — distributed/resumable Monte-Carlo driver.
//
// Runs one shard of a trial campaign in this process, checkpointing raw
// per-trial outcomes under dir=, or merges all shards into the final
// statistics. The merged result is bit-identical to a single-process run of
// the same campaign at any thread count — doubles are emitted as %a hex
// floats so two out= files can be compared with cmp(1).
//
// Worked example (waveform campaign split 4 ways, possibly on 4 machines):
//   fig_campaign kind=waveform trials=64 shard=0/4 dir=ckpt   # ... 1/4..3/4
//   fig_campaign kind=waveform trials=64 shard=0/4 dir=ckpt merge=1 out=a.txt
// The merge step loads every completed shard's checkpoint from dir= and
// computes any missing shard in-process, so it also serves as the resume
// path after an interrupted sweep. Compare against the uninterrupted run:
//   fig_campaign kind=waveform trials=64 merge=1 out=b.txt && cmp a.txt b.txt
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "sim/campaign.hpp"
#include "sim/scenario.hpp"
#include "vanatta/mismatch.hpp"

namespace {

using namespace vab;

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

void write_out(const common::Config& cfg, const std::vector<std::string>& lines) {
  for (const std::string& l : lines) std::cout << l << "\n";
  const std::string path = cfg.get_string("out", "");
  if (path.empty()) return;
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    for (const std::string& l : lines) std::fprintf(f, "%s\n", l.c_str());
    std::fclose(f);
    std::cout << "wrote " << path << "\n";
  }
}

/// Shard configs for every shard of the campaign (merge mode) or just the
/// one this process owns.
std::vector<sim::CampaignConfig> shard_configs(const sim::CampaignConfig& base,
                                               bool merge) {
  std::vector<sim::CampaignConfig> out;
  if (!merge) {
    out.push_back(base);
    return out;
  }
  for (std::size_t i = 0; i < base.shard.count; ++i) {
    sim::CampaignConfig c = base;
    c.shard.index = i;
    out.push_back(c);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = common::Config::from_args(argc, argv);
  bench::banner("CAMPAIGN", "Distributed resumable Monte-Carlo",
                "sharded trials merge bit-identical to a single-process run");

  const std::string kind = cfg.get_string("kind", "waveform");
  const auto trials = static_cast<std::size_t>(cfg.get_int("trials", 64));
  const auto bits = static_cast<std::size_t>(cfg.get_int("bits", 64));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
  const bool merge = cfg.get_int("merge", 0) != 0;
  bench::init_threads(cfg);

  sim::CampaignConfig base;
  base.dir = cfg.get_string("dir", "");
  base.shard = sim::ShardSpec::parse(cfg.get_string("shard", "0/1"));
  base.key = kind + ":trials=" + std::to_string(trials) +
             ":bits=" + std::to_string(bits) + ":seed=" + std::to_string(seed);
  sim::record_shard_manifest(base.shard);

  const common::Rng rng(seed);
  const auto shard_cfgs = shard_configs(base, merge);
  bench::Stopwatch sw;
  std::vector<std::string> lines;

  if (kind == "waveform") {
    sim::Scenario scenario = sim::vab_river_scenario();
    scenario.range_m = cfg.get_double("range", 100.0);
    std::vector<sim::WaveformShardResult> shards;
    for (const auto& c : shard_cfgs)
      shards.push_back(sim::run_waveform_shard(scenario, trials, bits, rng, c));
    if (merge) {
      const auto stats = sim::merge_waveform_campaign(shards, trials, bits);
      lines = {"trials=" + std::to_string(stats.trials),
               "frames_synced=" + std::to_string(stats.frames_synced),
               "frames_ok=" + std::to_string(stats.frames_ok),
               "total_bits=" + std::to_string(stats.total_bits),
               "bit_errors=" + std::to_string(stats.bit_errors),
               "mean_snr_db=" + fmt(stats.mean_snr_db),
               "mean_corr_peak=" + fmt(stats.mean_corr_peak),
               "mean_sic_suppression_db=" + fmt(stats.mean_sic_suppression_db)};
    }
  } else if (kind == "linkbudget") {
    const sim::LinkBudget budget(sim::vab_river_scenario());
    const double range_m = cfg.get_double("range", 200.0);
    std::vector<sim::BerShardResult> shards;
    for (const auto& c : shard_cfgs)
      shards.push_back(sim::run_linkbudget_shard(budget, common::Meters{range_m},
                                                 trials, bits, rng, c));
    if (merge) {
      const auto stats = sim::merge_linkbudget_campaign(shards, trials, bits);
      lines = {"bits=" + std::to_string(stats.bits),
               "errors=" + std::to_string(stats.errors),
               "mean_snr_db=" + fmt(stats.mean_snr_db)};
    }
  } else if (kind == "mismatch") {
    vanatta::VanAttaConfig ac;
    ac.n_elements = static_cast<std::size_t>(cfg.get_int("elements", 8));
    const double sigma_phase = cfg.get_double("sigma_phase_rad", 0.2);
    const double sigma_gain = cfg.get_double("sigma_gain_db", 1.0);
    std::vector<sim::MismatchShardResult> shards;
    for (const auto& c : shard_cfgs)
      shards.push_back(sim::run_mismatch_shard(ac, 0.0, common::Hz{18500.0},
                                               sigma_phase,
                                               common::Db{sigma_gain}, trials,
                                               rng, c));
    if (merge) {
      const auto r = sim::merge_mismatch_campaign(shards, trials);
      lines = {"mean_loss_db=" + fmt(r.mean_loss_db),
               "p95_loss_db=" + fmt(r.p95_loss_db),
               "worst_loss_db=" + fmt(r.worst_loss_db)};
    }
  } else {
    std::cerr << "unknown kind=" << kind
              << " (expected waveform|linkbudget|mismatch)\n";
    return 2;
  }

  if (merge) {
    write_out(cfg, lines);
  } else {
    std::cout << "shard " << base.shard.str() << " done ("
              << (base.dir.empty() ? "no checkpoint" : "checkpointed to " + base.dir)
              << ")\n";
  }
  bench::emit_timing("CAMPAIGN", kind + (merge ? ".merge" : ".shard"), sw.seconds(),
                     trials);
  return 0;
}
