// E4 — Ocean deployment: BER vs range under the coastal-ocean profile
// (salt-water absorption, deeper column, calm-sea Wenz noise). The paper's
// first-in-ocean validation.
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "sim/montecarlo.hpp"
#include "sim/scenario.hpp"

int main(int argc, char** argv) {
  using namespace vab;
  const auto cfg = common::Config::from_args(argc, argv);
  bench::banner("E4", "Ocean deployment BER vs range",
                "first experimental validation of underwater backscatter in the ocean");

  const auto trials = static_cast<std::size_t>(cfg.get_int("trials", 400));
  common::Rng rng(static_cast<std::uint64_t>(cfg.get_int("seed", 4)));
  bench::init_threads(cfg);
  bench::Stopwatch sw;

  const rvec ranges{25, 50, 100, 150, 200, 250, 300, 350};
  const auto ocean =
      sim::ber_vs_range_sweep(sim::vab_ocean_scenario(), ranges, trials, 1024, rng);
  const auto river =
      sim::ber_vs_range_sweep(sim::vab_river_scenario(), ranges, trials, 1024, rng);

  common::Table t({"range_m", "ocean_snr_db", "ocean_ber", "river_snr_db", "river_ber"});
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    t.add_row({common::Table::num(ranges[i], 0), common::Table::num(ocean[i].snr_db, 1),
               common::Table::sci(ocean[i].ber), common::Table::num(river[i].snr_db, 1),
               common::Table::sci(river[i].ber)});
  }
  bench::emit(t, cfg);

  // Waveform check in the ocean profile.
  sim::Scenario s = sim::vab_ocean_scenario();
  s.range_m = cfg.get_double("waveform_range_m", 200.0);
  s.env.fading_sigma_db = 0.0;
  common::Rng wrng = rng.child(99);
  const auto stats = sim::run_waveform_trials(s, 3, 64, wrng);
  std::cout << "waveform check @" << s.range_m << " m: frames_ok=" << stats.frames_ok
            << "/" << stats.trials << " ber=" << stats.ber() << "\n";
  bench::emit_timing("E4", "sweep+waveform", sw.seconds(),
                     2 * ranges.size() * trials + 3);
  return 0;
}
