// E11 — Fabrication-tolerance Monte-Carlo: retro-gain loss vs per-element
// phase error (line-length mismatch) and amplitude spread. Justifies the
// equal-length-line construction requirement.
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "vanatta/mismatch.hpp"

int main(int argc, char** argv) {
  using namespace vab;
  const auto cfg = common::Config::from_args(argc, argv);
  bench::banner("E11", "Mismatch tolerance Monte-Carlo",
                "equal-length pair lines keep the coherent retro gain");

  const auto trials = static_cast<std::size_t>(cfg.get_int("trials", 500));
  common::Rng rng(static_cast<std::uint64_t>(cfg.get_int("seed", 11)));
  bench::init_threads(cfg);
  bench::Stopwatch sw;

  vanatta::VanAttaConfig ac;
  ac.n_elements = static_cast<std::size_t>(cfg.get_int("elements", 8));

  common::Table t({"phase_sigma_deg", "line_len_sigma_mm", "mean_loss_db", "p95_loss_db",
                   "worst_loss_db"});
  const double lambda_mm = 1500.0 / 18500.0 * 1000.0;
  for (double sigma_deg : {2.0, 5.0, 10.0, 20.0, 45.0, 90.0}) {
    common::Rng local = rng.child(static_cast<std::uint64_t>(sigma_deg));
    const auto r = vanatta::mismatch_monte_carlo(
        ac, 0.0, 18500.0, common::deg_to_rad(sigma_deg), 0.0, trials, local);
    t.add_row({common::Table::num(sigma_deg, 0),
               common::Table::num(sigma_deg / 360.0 * lambda_mm, 2),
               common::Table::num(r.mean_loss_db, 2),
               common::Table::num(r.p95_loss_db, 2),
               common::Table::num(r.worst_loss_db, 2)});
  }
  bench::emit(t, cfg);

  std::cout << "amplitude-only spread (1 dB sigma per element):\n";
  common::Rng local = rng.child(999);
  const auto amp =
      vanatta::mismatch_monte_carlo(ac, 0.0, 18500.0, 0.0, 1.0, trials, local);
  std::cout << "  mean loss " << common::Table::num(amp.mean_loss_db, 2) << " dB, p95 "
            << common::Table::num(amp.p95_loss_db, 2) << " dB\n";
  bench::emit_timing("E11", "mismatch_mc", sw.seconds(), 7 * trials);
  return 0;
}
