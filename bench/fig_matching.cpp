// E7 — Matching-network co-design: fraction of available electrical power
// radiated acoustically vs frequency, with and without the synthesized
// L-section. The ablation behind VAB's element-efficiency advantage.
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "piezo/matching.hpp"

int main(int argc, char** argv) {
  using namespace vab;
  const auto cfg = common::Config::from_args(argc, argv);
  bench::banner("E7", "Matching-network power transfer vs frequency",
                "co-designed matching boosts element efficiency at the carrier");

  const double f0 = cfg.get_double("f0_hz", 18500.0);
  const double q_m = cfg.get_double("q_m", 25.0);
  const double k_eff = cfg.get_double("k_eff", 0.3);
  const double r_source = cfg.get_double("r_source", 50.0);
  bench::init_threads(cfg);
  bench::Stopwatch sw;

  const piezo::BvdModel bvd =
      piezo::BvdModel::from_resonance(f0, q_m, k_eff, 10e-9, 0.75);
  const piezo::MatchedTransducer mt(bvd, r_source, f0);

  common::Table t({"freq_hz", "matched_radiated_frac", "unmatched_radiated_frac",
                   "|Z|_ohms", "improvement_db"});
  for (double f : common::linspace(0.85 * f0, 1.15 * f0, 13)) {
    const double m = mt.radiated_fraction(f);
    const double u = mt.radiated_fraction_unmatched(f);
    t.add_row({common::Table::num(f, 0), common::Table::num(m, 3),
               common::Table::num(u, 3),
               common::Table::num(std::abs(bvd.impedance(f)), 1),
               common::Table::num(10.0 * std::log10(std::max(m, 1e-12) /
                                                    std::max(u, 1e-12)),
                                  1)});
  }
  bench::emit(t, cfg);

  const auto& sec = mt.section();
  std::cout << "synthesized L-section: series "
            << (sec.x_series_ohms >= 0
                    ? common::Table::num(sec.series_inductance() * 1e3, 3) + " mH"
                    : common::Table::num(sec.series_capacitance() * 1e9, 2) + " nF")
            << ", shunt "
            << (sec.b_shunt_siemens >= 0
                    ? common::Table::num(sec.shunt_capacitance() * 1e9, 2) + " nF"
                    : common::Table::num(sec.shunt_inductance() * 1e3, 3) + " mH")
            << "\n";
  bench::emit_timing("E7", "matching_sweep", sw.seconds(), 13);
  return 0;
}
