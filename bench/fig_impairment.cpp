// EXT-5 — Impairment sweep: ARQ inventory delivery ratio and airtime cost
// vs Gilbert–Elliott burst-loss rate, with the retry protocol on and off.
//
// The paper's field trials report packet loss in bursts (surface waves,
// passing boats); this sweep quantifies how much a stop-and-wait ARQ with
// exponential backoff buys back. "arq=off" caps the retry budget at zero,
// so each node gets exactly one poll per round and loss shows up directly
// in the delivery ratio.
//
// `series=<path>` records one vab-series-v1 point per (loss, arq) grid cell,
// keyed on the cumulative virtual airtime of the sweep; the per-cell values
// are exact integer sums over the cell's trials, so the series is
// byte-identical for any thread count.
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "net/inventory.hpp"

int main(int argc, char** argv) {
  using namespace vab;
  const auto cfg = common::Config::from_args(argc, argv);
  bench::banner("EXT-5", "Burst-loss impairment sweep",
                "ARQ delivery ratio vs Gilbert-Elliott mean loss rate");

  const auto n_nodes = static_cast<std::size_t>(cfg.get_int("nodes", 16));
  const auto trials = static_cast<std::size_t>(cfg.get_int("trials", 50));
  common::Rng rng(static_cast<std::uint64_t>(cfg.get_int("seed", 5)));
  bench::init_threads(cfg);
  bench::Stopwatch sw;

  std::vector<std::uint8_t> population(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i)
    population[i] = static_cast<std::uint8_t>(i + 1);

  struct Cell {
    double mean_loss;
    bool arq;
  };
  std::vector<Cell> grid;
  for (double loss : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5})
    for (bool arq : {false, true}) grid.push_back({loss, arq});

  struct CellStats {
    double delivery = 0.0, polls = 0.0, retries = 0.0, duration_s = 0.0,
           completed = 0.0;
    // Exact integer sums over the cell's trials (the columns above are
    // per-trial means), feeding the series export and any exact cross-run
    // comparison.
    std::uint64_t delivered_n = 0, polls_n = 0, retries_n = 0, completed_n = 0;
    double airtime_sum_s = 0.0;
  };
  std::vector<CellStats> stats(grid.size());

  common::parallel_for(0, grid.size(), [&](std::size_t g) {
    const Cell& cell = grid[g];
    CellStats acc;
    for (std::size_t t = 0; t < trials; ++t) {
      common::Rng trial_rng = rng.child(g * 10000 + t);
      net::InventoryConfig inv;
      if (!cell.arq) {
        inv.arq.max_retries = 0;
        inv.arq.demote_after_misses = 1000000;  // never demote: pure one-shot
      }
      fault::FaultPlan plan;
      plan.seed = 0x5EED000 + g * 1000 + t;
      if (cell.mean_loss > 0.0) {
        plan.burst.p_bad_to_good = 0.3;
        plan.burst.p_good_to_bad =
            0.3 * cell.mean_loss / (1.0 - cell.mean_loss);
        plan.burst.loss_good = 0.0;
        plan.burst.loss_bad = 1.0;
      }
      fault::FaultInjector inj(plan);
      fault::FaultInjector* hook = plan.empty() ? nullptr : &inj;
      // One-shot mode: a single round over the population, no re-rounds.
      if (!cell.arq) inv.max_polls = n_nodes;
      const net::InventoryResult r =
          net::run_inventory(population, inv, hook, trial_rng);
      acc.delivery += r.delivery_ratio();
      acc.polls += static_cast<double>(r.polls);
      acc.retries += static_cast<double>(r.retries);
      acc.duration_s += r.duration_s;
      acc.completed += r.complete ? 1.0 : 0.0;
      acc.delivered_n += static_cast<std::uint64_t>(r.delivered);
      acc.polls_n += static_cast<std::uint64_t>(r.polls);
      acc.retries_n += static_cast<std::uint64_t>(r.retries);
      acc.completed_n += r.complete ? 1 : 0;
      acc.airtime_sum_s += r.duration_s;
    }
    const double n = static_cast<double>(trials);
    stats[g] = {acc.delivery / n,    acc.polls / n,     acc.retries / n,
                acc.duration_s / n,  acc.completed / n, acc.delivered_n,
                acc.polls_n,         acc.retries_n,     acc.completed_n,
                acc.airtime_sum_s};
  });

  common::Table t({"mean_loss", "arq", "delivery_ratio", "polls", "retries",
                   "airtime_s", "complete_frac"});
  for (std::size_t g = 0; g < grid.size(); ++g) {
    t.add_row({common::Table::num(grid[g].mean_loss, 2),
               grid[g].arq ? "on" : "off",
               common::Table::num(stats[g].delivery, 3),
               common::Table::num(stats[g].polls, 1),
               common::Table::num(stats[g].retries, 1),
               common::Table::num(stats[g].duration_s, 2),
               common::Table::num(stats[g].completed, 2)});
  }
  bench::emit(t, cfg);

  // Cells ran in parallel; emission here walks the grid in declaration
  // order, keyed on cumulative virtual airtime, so the file is byte-stable.
  if (const std::string sp_path = cfg.get_string("series", ""); !sp_path.empty()) {
    obs::SeriesWriter series("impairment.cells", sp_path);
    double airtime_acc = 0.0;
    for (std::size_t g = 0; g < grid.size(); ++g) {
      airtime_acc += stats[g].airtime_sum_s;
      obs::SeriesPoint sp;
      sp.window = g;
      sp.t_s = airtime_acc;
      sp.labels = {{"loss", common::Table::num(grid[g].mean_loss, 2)},
                   {"arq", grid[g].arq ? "on" : "off"}};
      sp.values = {{"delivered", stats[g].delivered_n},
                   {"polls", stats[g].polls_n},
                   {"retries", stats[g].retries_n},
                   {"completed", stats[g].completed_n},
                   {"trials", trials}};
      sp.reals = {{"airtime_s", stats[g].airtime_sum_s}};
      series.emit(sp);
    }
    std::cout << "wrote " << sp_path << "\n";
  }

  bench::emit_timing("EXT-5", "impairment_sweep", sw.seconds(),
                     grid.size() * trials);
  return 0;
}
