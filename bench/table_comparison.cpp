// E5 — Head-to-head comparison table: VAB vs prior-art single-element
// backscatter (PAB) and a non-retro fixed-phase array, at the same
// throughput and node power. The paper's headline 15x range claim.
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "piezo/harvester.hpp"
#include "sim/linkbudget.hpp"
#include "sim/scenario.hpp"

int main(int argc, char** argv) {
  using namespace vab;
  const auto cfg = common::Config::from_args(argc, argv);
  bench::banner("E5", "Head-to-head vs prior state of the art",
                "15x range at the same throughput and power");

  const auto trials = static_cast<std::size_t>(cfg.get_int("trials", 300));
  common::Rng rng(static_cast<std::uint64_t>(cfg.get_int("seed", 5)));
  bench::init_threads(cfg);
  bench::Stopwatch sw;

  struct Row {
    const char* name;
    sim::Scenario scenario;
  };
  sim::Scenario fixed = sim::vab_river_scenario();
  fixed.node.array.mode = vanatta::ArrayMode::kFixedPhase;
  std::vector<Row> rows{{"VAB (this work)", sim::vab_river_scenario()},
                        {"PAB single-element", sim::pab_river_scenario()},
                        {"fixed-phase array", fixed}};

  const piezo::PowerBudget power{};
  common::Table t({"system", "max_range_m", "max_range_30deg_m", "range_vs_pab",
                   "throughput_bps", "node_power_uW", "energy_per_bit_nJ"});
  double pab_range = 1.0;
  std::vector<double> max_ranges, off_ranges;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    common::Rng local = rng.child(i);
    const sim::LinkBudget lb(rows[i].scenario);
    max_ranges.push_back(lb.max_range(1e-3, trials, local).raw());
    // Underwater nodes cannot be aimed: repeat at 30 degrees off broadside.
    sim::Scenario off = rows[i].scenario;
    off.node.orientation_rad = common::deg_to_rad(30.0);
    common::Rng local2 = rng.child(100 + i);
    off_ranges.push_back(sim::LinkBudget(off).max_range(1e-3, trials, local2).raw());
    if (std::string(rows[i].name).find("PAB") != std::string::npos)
      pab_range = max_ranges.back();
  }
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double bitrate = rows[i].scenario.phy.bitrate_bps;
    t.add_row({rows[i].name, common::Table::num(max_ranges[i], 0),
               common::Table::num(off_ranges[i], 0),
               common::Table::num(max_ranges[i] / pab_range, 1) + "x",
               common::Table::num(bitrate, 0),
               common::Table::num(power.backscatter_w * 1e6, 1),
               common::Table::num(piezo::energy_per_bit_j(power, bitrate) * 1e9, 1)});
  }
  bench::emit(t, cfg);
  // Each max_range_m bisection runs up to 26 Monte-Carlo batches of `trials`
  // packets; two bisections (broadside + 30 deg) per system.
  bench::emit_timing("E5", "max_range_bisect", sw.seconds(),
                     rows.size() * 2 * 26 * trials);

  std::cout << "note: all systems share the projector, carrier, bitrate and node power\n"
               "budget; the range gain comes from the retrodirective array + the\n"
               "matching/polarity co-design (ablations: E2, E3, E7, E10).\n";
  return 0;
}
