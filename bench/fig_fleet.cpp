// FLEET — Fleet-scale inventory scaling: many readers, 1k..10k+ backscatter
// nodes over the spatially partitioned medium, with adaptive PHY fidelity
// (link-budget abstraction by default, waveform escalation for marginal or
// contended links).
//
// Also the determinism gate for the fleet core: the largest sweep point is
// re-run with the parallel engine pinned to 1, 2, and 8 threads and every
// replicate's digest must match bit-for-bit (exit code 1 on mismatch).
// `budget_s=N` adds a wall-clock ceiling on the sweep (exit code 2), which
// CI uses to catch superlinear regressions in the fleet hot path.
// `series=<path>` records every closed address window as a vab-series-v1
// JSONL point (virtual-clock time base, labeled by sweep point / replicate /
// reader) — purely observational, digests are unchanged.
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "sim/fleet/fleet.hpp"
#include "sim/scenario.hpp"

namespace {

std::string hex64(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << std::setfill('0') << std::setw(16) << v;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vab;
  const auto cfg = common::Config::from_args(argc, argv);
  bench::banner("FLEET", "Fleet-scale inventory scaling",
                "van atta backscatter scales to dense sensor deployments");

  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 23));
  const auto max_nodes = static_cast<std::size_t>(cfg.get_int("max_nodes", 10000));
  const auto replicates = static_cast<std::size_t>(cfg.get_int("replicates", 4));
  const auto wave_cap = static_cast<std::size_t>(cfg.get_int("wave_cap", 8));
  const double budget_s = cfg.get_double("budget_s", 0.0);
  const std::string series_path = cfg.get_string("series", "");
  const unsigned threads = bench::init_threads(cfg);
  common::Rng rng(seed);
  bench::Stopwatch total;

  // Window-level time series, streamed as vab-series-v1 JSONL. Replicates
  // run in parallel, so each run buffers its points (FleetResult::series)
  // and we emit them here in replicate order with a run-global sequence
  // number — byte-identical output for any thread count.
  std::unique_ptr<obs::SeriesWriter> series;
  std::uint64_t series_seq = 0;
  if (!series_path.empty())
    series = std::make_unique<obs::SeriesWriter>("fleet.windows", series_path);

  struct SweepPoint {
    std::size_t n_nodes;
    std::size_t n_readers;
    double area_m;
  };
  const std::vector<SweepPoint> sweep = {
      {100, 1, 300.0},    {1000, 4, 800.0},   {3000, 9, 1200.0},
      {10000, 16, 2000.0}, {30000, 36, 3500.0}, {100000, 100, 6000.0}};

  const auto make_config = [&](const SweepPoint& pt) {
    sim::fleet::FleetConfig fc;
    fc.scenario = sim::vab_river_scenario();
    fc.n_nodes = pt.n_nodes;
    fc.n_readers = pt.n_readers;
    fc.area_m = pt.area_m;
    fc.fidelity.max_waveform_polls = wave_cap;
    fc.record_series = series != nullptr;
    return fc;
  };

  common::Table t({"nodes", "readers", "assigned", "delivered", "ratio", "windows",
                   "wave_polls", "makespan_s", "wall_s", "digest"});
  std::size_t total_nodes = 0;
  sim::fleet::FleetConfig largest;
  std::uint64_t largest_tag = 0;
  bool have_largest = false;
  for (std::size_t p = 0; p < sweep.size(); ++p) {
    const SweepPoint& pt = sweep[p];
    if (pt.n_nodes > max_nodes) continue;
    const sim::fleet::FleetConfig fc = make_config(pt);
    bench::Stopwatch sw;
    const auto runs =
        sim::fleet::run_fleet_replicates(fc, replicates, rng.child(p));
    const double wall = sw.seconds();
    std::uint64_t digest = 0;
    std::size_t assigned = 0, delivered = 0, windows = 0, wave_polls = 0;
    double makespan = 0.0;
    for (const auto& r : runs) {
      digest = (digest * 0x100000001b3ULL) ^ r.digest;
      assigned += r.assigned;
      delivered += r.delivered;
      windows += r.windows;
      wave_polls += r.tally.waveform_polls;
      makespan = std::max(makespan, r.makespan_s);
    }
    if (series) {
      for (std::size_t k = 0; k < runs.size(); ++k) {
        for (const auto& wp : runs[k].series) {
          obs::SeriesPoint sp;
          sp.window = series_seq++;
          sp.t_s = wp.t_close_s;
          sp.labels = {{"nodes", std::to_string(pt.n_nodes)},
                       {"replicate", std::to_string(k)},
                       {"reader", std::to_string(wp.reader)}};
          sp.values = {{"window", wp.window},
                       {"contenders", wp.contenders},
                       {"links", wp.links},
                       {"delivered", wp.delivered},
                       {"polls", wp.polls},
                       {"retries", wp.retries},
                       {"timeouts", wp.timeouts},
                       {"escalations", wp.escalations},
                       {"waveform_polls", wp.waveform_polls}};
          sp.reals = {{"airtime_s", wp.airtime_s}};
          series->emit(sp);
        }
      }
    }
    total_nodes += pt.n_nodes * replicates;
    largest = fc;
    largest_tag = p;
    have_largest = true;
    const double ratio =
        assigned ? static_cast<double>(delivered) / static_cast<double>(assigned)
                 : 0.0;
    t.add_row({std::to_string(pt.n_nodes), std::to_string(pt.n_readers),
               std::to_string(assigned), std::to_string(delivered),
               common::Table::num(ratio, 3), std::to_string(windows),
               std::to_string(wave_polls), common::Table::num(makespan, 0),
               common::Table::num(wall, 2), hex64(digest)});
  }
  bench::emit(t, cfg);
  const double sweep_s = total.seconds();
  bench::emit_timing("FLEET", "node_sweep", sweep_s, total_nodes);

  // Determinism gate: the largest sweep point, re-run with the engine pinned
  // to 1, 2, and 8 threads. Every replicate digest must match bit-for-bit.
  bool identical = true;
  if (have_largest && cfg.get_int("check_identity", 1) != 0) {
    largest.record_series = false;  // the gate compares digests, not series
    std::vector<std::vector<std::uint64_t>> digests;
    for (const unsigned n : {1U, 2U, 8U}) {
      common::set_thread_count(n);
      const auto runs = sim::fleet::run_fleet_replicates(largest, replicates,
                                                         rng.child(largest_tag));
      std::vector<std::uint64_t> d;
      d.reserve(runs.size());
      for (const auto& r : runs) d.push_back(r.digest);
      digests.push_back(std::move(d));
    }
    common::set_thread_count(threads);
    for (std::size_t i = 1; i < digests.size(); ++i)
      if (digests[i] != digests[0]) identical = false;
    std::cout << "thread identity (1/2/8 threads, " << largest.n_nodes
              << " nodes): " << (identical ? "bit-identical" : "MISMATCH") << "\n";
  }

  if (budget_s > 0.0 && sweep_s > budget_s) {
    std::cout << "BUDGET EXCEEDED: sweep took " << common::Table::num(sweep_s, 2)
              << " s (budget " << common::Table::num(budget_s, 2) << " s)\n";
    return 2;
  }
  return identical ? 0 : 1;
}
