// Shared helpers for the experiment-reproduction benches: banner, table
// emission, parallel-engine setup and timing/throughput counters. The
// standard trial counts can be overridden with key=value args
// (e.g. `trials=2000 threads=8 csv=out.csv`).
#pragma once

#include <chrono>
#include <iostream>
#include <sstream>
#include <string>

#include "common/config.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"

namespace vab::bench {

inline void banner(const std::string& id, const std::string& title,
                   const std::string& paper_claim) {
  std::cout << "=== " << id << ": " << title << " ===\n";
  std::cout << "paper: " << paper_claim << "\n\n";
}

inline void emit(const common::Table& table, const common::Config& cfg) {
  std::cout << table.to_string() << "\n";
  const std::string csv = cfg.get_string("csv", "");
  if (!csv.empty()) {
    table.write_csv(csv);
    std::cout << "wrote " << csv << "\n";
  }
}

/// Applies the `threads=N` config key (falling back to VAB_THREADS / the
/// hardware) to the parallel engine and returns the effective count.
inline unsigned init_threads(const common::Config& cfg) {
  const long n = cfg.get_int("threads", 0);
  common::set_thread_count(n > 0 ? static_cast<unsigned>(n) : 0);
  return common::thread_count();
}

/// Wall-clock stopwatch for the per-sweep timing counters.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Emits one machine-parsable timing record:
///   BENCH {"bench":"E1","section":"sweep","threads":8,"elapsed_s":...,
///          "trials":4400,"trials_per_s":...[,"serial_elapsed_s":...,
///          "speedup":...]}
/// Pass `serial_elapsed_s > 0` (a 1-thread re-run of the same workload) to
/// report the measured parallel speedup.
inline void emit_timing(const std::string& bench_id, const std::string& section,
                        double elapsed_s, std::size_t trials,
                        double serial_elapsed_s = 0.0) {
  std::ostringstream os;
  os << "BENCH {\"bench\":\"" << bench_id << "\",\"section\":\"" << section
     << "\",\"threads\":" << common::thread_count() << ",\"elapsed_s\":" << elapsed_s
     << ",\"trials\":" << trials;
  if (elapsed_s > 0.0)
    os << ",\"trials_per_s\":" << static_cast<double>(trials) / elapsed_s;
  if (serial_elapsed_s > 0.0 && elapsed_s > 0.0)
    os << ",\"serial_elapsed_s\":" << serial_elapsed_s
       << ",\"speedup\":" << serial_elapsed_s / elapsed_s;
  os << "}";
  std::cout << os.str() << "\n";
}

}  // namespace vab::bench
