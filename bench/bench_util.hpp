// Shared helpers for the experiment-reproduction benches: banner, table
// emission, and the standard trial counts (override with key=value args,
// e.g. `trials=2000 csv=out.csv`).
#pragma once

#include <iostream>
#include <string>

#include "common/config.hpp"
#include "common/table.hpp"

namespace vab::bench {

inline void banner(const std::string& id, const std::string& title,
                   const std::string& paper_claim) {
  std::cout << "=== " << id << ": " << title << " ===\n";
  std::cout << "paper: " << paper_claim << "\n\n";
}

inline void emit(const common::Table& table, const common::Config& cfg) {
  std::cout << table.to_string() << "\n";
  const std::string csv = cfg.get_string("csv", "");
  if (!csv.empty()) {
    table.write_csv(csv);
    std::cout << "wrote " << csv << "\n";
  }
}

}  // namespace vab::bench
