// Shared helpers for the experiment-reproduction benches: banner, table
// emission, parallel-engine setup and timing/throughput counters. The
// standard trial counts can be overridden with key=value args
// (e.g. `trials=2000 threads=8 csv=out.csv`).
#pragma once

#include <chrono>
#include <iostream>
#include <string>

#include "common/config.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "dsp/simd/simd.hpp"
#include "obs/obs.hpp"

namespace vab::bench {

inline void banner(const std::string& id, const std::string& title,
                   const std::string& paper_claim) {
  std::cout << "=== " << id << ": " << title << " ===\n";
  std::cout << "paper: " << paper_claim << "\n\n";
}

inline void emit(const common::Table& table, const common::Config& cfg) {
  std::cout << table.to_string() << "\n";
  const std::string csv = cfg.get_string("csv", "");
  if (!csv.empty()) {
    table.write_csv(csv);
    std::cout << "wrote " << csv << "\n";
  }
}

/// Applies the `threads=N` config key (falling back to VAB_THREADS / the
/// hardware) to the parallel engine and returns the effective count. Also
/// wires up observability: the full config is snapshotted into the run
/// manifest, and `trace=<path>` / `metrics=<path>` / `profile=<path>` config
/// keys enable the tracer / metrics dump / span profiler exactly like
/// VAB_TRACE / VAB_METRICS / VAB_PROFILE.
inline unsigned init_threads(const common::Config& cfg) {
  const long n = cfg.get_int("threads", 0);
  common::set_thread_count(n > 0 ? static_cast<unsigned>(n) : 0);
  // Resolve SIMD dispatch eagerly so "simd_isa" is in the manifest (and in
  // every BENCH line) even for benches that never touch a DSP kernel.
  dsp::simd::active_isa();
  for (const auto& key : cfg.keys())
    obs::set_manifest("config." + key, cfg.get_string(key, ""));
  if (cfg.has("seed")) obs::set_manifest("seed", cfg.get_string("seed", ""));
  if (const std::string p = cfg.get_string("trace", ""); !p.empty())
    obs::enable_trace(p);
  if (const std::string p = cfg.get_string("metrics", ""); !p.empty())
    obs::enable_metrics(p);
  if (const std::string p = cfg.get_string("profile", ""); !p.empty())
    obs::enable_profile(p);
  return common::thread_count();
}

/// Wall-clock stopwatch for the per-sweep timing counters.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Emits one machine-parsable timing record (schema vab-bench-v2):
///   BENCH {"schema":"vab-bench-v2","bench":"E1","section":"sweep",
///          "threads":8,"elapsed_s":...,"trials":4400,"trials_per_s":...
///          [,"serial_elapsed_s":...,"speedup":...],"manifest":{...}}
/// String fields are JSON-escaped by the shared obs::JsonWriter (the v1
/// writer interpolated bench_id/section raw) and every record carries the
/// run manifest (library version, build type, seed, config snapshot).
/// Pass `serial_elapsed_s > 0` (a 1-thread re-run of the same workload) to
/// report the measured parallel speedup.
inline void emit_timing(const std::string& bench_id, const std::string& section,
                        double elapsed_s, std::size_t trials,
                        double serial_elapsed_s = 0.0) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("schema", "vab-bench-v2");
  w.field("bench", bench_id);
  w.field("section", section);
  w.field("threads", common::thread_count());
  w.field("elapsed_s", elapsed_s);
  w.field("trials", static_cast<std::uint64_t>(trials));
  if (elapsed_s > 0.0)
    w.field("trials_per_s", static_cast<double>(trials) / elapsed_s);
  if (serial_elapsed_s > 0.0 && elapsed_s > 0.0) {
    w.field("serial_elapsed_s", serial_elapsed_s);
    w.field("speedup", serial_elapsed_s / elapsed_s);
  }
  w.key("manifest").raw(obs::manifest_json());
  w.end_object();
  std::cout << "BENCH " << w.str() << "\n";
}

}  // namespace vab::bench
