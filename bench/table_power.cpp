// E9 — Node power budget: state powers, energy per bit, harvested power vs
// range and the energy-neutral operating region (battery-free operation).
#include <iostream>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "piezo/bvd.hpp"
#include "piezo/harvester.hpp"
#include "sim/linkbudget.hpp"
#include "sim/scenario.hpp"

int main(int argc, char** argv) {
  using namespace vab;
  const auto cfg = common::Config::from_args(argc, argv);
  bench::banner("E9", "Node power budget",
                "ultra-low-power: uW-scale node, battery-free near the reader");

  bench::init_threads(cfg);
  bench::Stopwatch sw;
  const piezo::PowerBudget power{};
  common::Table s({"state", "power_uW"});
  s.add_row({"sleep (RTC + leakage)", common::Table::num(power.sleep_w * 1e6, 2)});
  s.add_row({"downlink listen (envelope det.)",
             common::Table::num(power.rx_listen_w * 1e6, 1)});
  s.add_row({"backscatter uplink (FM0 + switches)",
             common::Table::num(power.backscatter_w * 1e6, 1)});
  s.add_row({"MCU active (sensor burst)",
             common::Table::num(power.mcu_active_w * 1e6, 0)});
  bench::emit(s, cfg);

  common::Table e({"bitrate_bps", "energy_per_bit_nJ"});
  for (double b : {100.0, 500.0, 1000.0, 2000.0})
    e.add_row({common::Table::num(b, 0),
               common::Table::num(piezo::energy_per_bit_j(power, b) * 1e9, 1)});
  bench::emit(e, common::Config{});

  // Harvested power vs range in the river scenario.
  const piezo::BvdModel bvd =
      piezo::BvdModel::from_resonance(18500.0, 25.0, 0.3, 10e-9, 0.6);
  const piezo::EnergyHarvester harvester({}, bvd);
  const sim::LinkBudget lb(sim::vab_river_scenario());
  const double avg_load =
      power.average_power_w(0.90, 0.05, 0.04, 0.01);  // typical duty cycle

  common::Table h({"range_m", "carrier_spl_db", "harvested_uW", "energy_neutral"});
  for (double r : {5.0, 10.0, 20.0, 40.0, 80.0, 160.0}) {
    const double spl = lb.carrier_spl_at_node(common::Meters{r}).raw();
    const double p_in =
        harvester.harvested_power_w(common::pressure_from_spl(spl), 18500.0);
    h.add_row({common::Table::num(r, 0), common::Table::num(spl, 1),
               common::Table::num(p_in * 1e6, 2),
               p_in * 0.95 >= avg_load ? "yes" : "no"});
  }
  bench::emit(h, common::Config{});
  std::cout << "duty-cycled load: " << common::Table::num(avg_load * 1e6, 2)
            << " uW (90% sleep / 5% listen / 4% backscatter / 1% active)\n";
  bench::emit_timing("E9", "power_budget", sw.seconds(), 6);
  return 0;
}
