// E1 — BER vs range in the river deployment (paper Fig.: range evaluation).
//
// Series: VAB (8-element Van Atta, polarity FM0) and the PAB single-element
// baseline, fading Monte-Carlo on the calibrated link budget; selected
// ranges are cross-checked with full waveform-level trials.
//
// Trials fan out over the parallel engine (threads=N / VAB_THREADS). The
// whole workload is re-run at 1 thread for the speedup counter (skip with
// baseline=0) and the two runs are asserted bit-identical — the engine's
// determinism contract, exercised on the real workload every bench run.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "sim/montecarlo.hpp"
#include "sim/scenario.hpp"

namespace {

struct E1Results {
  std::vector<vab::sim::SweepPoint> vab_sweep;
  std::vector<vab::sim::SweepPoint> pab_sweep;
  std::vector<vab::sim::WaveformStats> waveform;  // one per validation range
};

}  // namespace

int main(int argc, char** argv) {
  using namespace vab;
  const auto cfg = common::Config::from_args(argc, argv);
  bench::banner("E1", "BER vs range (river)",
                ">300 m round trip at BER 1e-3; PAB baseline fails past tens of meters");

  const auto trials = static_cast<std::size_t>(cfg.get_int("trials", 400));
  const auto bits = static_cast<std::size_t>(cfg.get_int("bits_per_trial", 1024));
  const auto wf_trials = static_cast<std::size_t>(cfg.get_int("waveform_trials", 3));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
  const unsigned threads = bench::init_threads(cfg);
  obs::set_manifest("seed", std::to_string(seed));

  const rvec ranges{25, 50, 75, 100, 150, 200, 250, 300, 350, 400, 500};
  const std::vector<double> wf_ranges{100.0, 200.0, 300.0};

  auto run_all = [&]() {
    common::Rng rng(seed);
    E1Results r;
    r.vab_sweep = sim::ber_vs_range_sweep(sim::vab_river_scenario(), ranges, trials,
                                          bits, rng);
    r.pab_sweep = sim::ber_vs_range_sweep(sim::pab_river_scenario(), ranges, trials,
                                          bits, rng);
    // Waveform-level validation points (full PHY chain, no-fading channel),
    // fanned out as one flat batch so every (range, trial) pair runs
    // concurrently.
    std::vector<sim::WaveformJob> jobs;
    for (double wr : wf_ranges) {
      sim::WaveformJob j;
      j.scenario = sim::vab_river_scenario();
      j.scenario.range_m = wr;
      j.scenario.env.fading_sigma_db = 0.0;
      j.trials = wf_trials;
      j.payload_bits = 64;
      j.rng = rng.child(static_cast<std::uint64_t>(wr));
      jobs.push_back(std::move(j));
    }
    r.waveform = sim::run_waveform_batch(jobs);
    return r;
  };

  bench::Stopwatch sw;
  const E1Results res = run_all();
  const double elapsed = sw.seconds();
  const std::size_t total_trials =
      2 * ranges.size() * trials + wf_ranges.size() * wf_trials;

  common::Table t({"range_m", "vab_snr_db", "vab_ber", "pab_snr_db", "pab_ber"});
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    t.add_row({common::Table::num(ranges[i], 0),
               common::Table::num(res.vab_sweep[i].snr_db, 1),
               common::Table::sci(res.vab_sweep[i].ber),
               common::Table::num(res.pab_sweep[i].snr_db, 1),
               common::Table::sci(res.pab_sweep[i].ber)});
  }
  bench::emit(t, cfg);

  std::cout << "waveform validation (full DSP chain):\n";
  common::Table v({"range_m", "frames_ok", "measured_ber", "mean_chip_snr_db"});
  for (std::size_t i = 0; i < wf_ranges.size(); ++i) {
    const auto& stats = res.waveform[i];
    v.add_row({common::Table::num(wf_ranges[i], 0),
               std::to_string(stats.frames_ok) + "/" + std::to_string(stats.trials),
               common::Table::sci(stats.ber()),
               common::Table::num(stats.mean_snr_db, 1)});
  }
  bench::emit(v, common::Config{});

  // Serial baseline: same workload at 1 thread, for the speedup counter and
  // a live check of the thread-count-invariance contract.
  double serial_elapsed = 0.0;
  if (threads > 1 && cfg.get_bool("baseline", true)) {
    common::set_thread_count(1);
    sw.reset();
    const E1Results serial = run_all();
    serial_elapsed = sw.seconds();
    common::set_thread_count(threads);
    for (std::size_t i = 0; i < ranges.size(); ++i) {
      if (serial.vab_sweep[i].errors != res.vab_sweep[i].errors ||
          serial.pab_sweep[i].errors != res.pab_sweep[i].errors) {
        std::cerr << "DETERMINISM VIOLATION: serial and " << threads
                  << "-thread sweeps differ at point " << i << "\n";
        return 1;
      }
    }
    for (std::size_t i = 0; i < res.waveform.size(); ++i) {
      if (serial.waveform[i].bit_errors != res.waveform[i].bit_errors) {
        std::cerr << "DETERMINISM VIOLATION: waveform batch differs at point " << i
                  << "\n";
        return 1;
      }
    }
    std::cout << "determinism: " << threads
              << "-thread run bit-identical to 1-thread run\n";
  }
  bench::emit_timing("E1", "sweep+waveform", elapsed, total_trials, serial_elapsed);
  return 0;
}
