// E1 — BER vs range in the river deployment (paper Fig.: range evaluation).
//
// Series: VAB (8-element Van Atta, polarity FM0) and the PAB single-element
// baseline, fading Monte-Carlo on the calibrated link budget; selected
// ranges are cross-checked with full waveform-level trials.
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "sim/montecarlo.hpp"
#include "sim/scenario.hpp"

int main(int argc, char** argv) {
  using namespace vab;
  const auto cfg = common::Config::from_args(argc, argv);
  bench::banner("E1", "BER vs range (river)",
                ">300 m round trip at BER 1e-3; PAB baseline fails past tens of meters");

  const auto trials = static_cast<std::size_t>(cfg.get_int("trials", 400));
  const auto bits = static_cast<std::size_t>(cfg.get_int("bits_per_trial", 1024));
  common::Rng rng(static_cast<std::uint64_t>(cfg.get_int("seed", 1)));

  const rvec ranges{25, 50, 75, 100, 150, 200, 250, 300, 350, 400, 500};
  const auto vab_sweep =
      sim::ber_vs_range_sweep(sim::vab_river_scenario(), ranges, trials, bits, rng);
  const auto pab_sweep =
      sim::ber_vs_range_sweep(sim::pab_river_scenario(), ranges, trials, bits, rng);

  common::Table t({"range_m", "vab_snr_db", "vab_ber", "pab_snr_db", "pab_ber"});
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    t.add_row({common::Table::num(ranges[i], 0), common::Table::num(vab_sweep[i].snr_db, 1),
               common::Table::sci(vab_sweep[i].ber), common::Table::num(pab_sweep[i].snr_db, 1),
               common::Table::sci(pab_sweep[i].ber)});
  }
  bench::emit(t, cfg);

  // Waveform-level validation points (full PHY chain, no-fading channel).
  std::cout << "waveform validation (full DSP chain):\n";
  common::Table v({"range_m", "frames_ok", "measured_ber", "mean_chip_snr_db"});
  for (double r : {100.0, 200.0, 300.0}) {
    sim::Scenario s = sim::vab_river_scenario();
    s.range_m = r;
    s.env.fading_sigma_db = 0.0;
    common::Rng wrng = rng.child(static_cast<std::uint64_t>(r));
    const auto stats = sim::run_waveform_trials(
        s, static_cast<std::size_t>(cfg.get_int("waveform_trials", 3)), 64, wrng);
    v.add_row({common::Table::num(r, 0),
               std::to_string(stats.frames_ok) + "/" + std::to_string(stats.trials),
               common::Table::sci(stats.ber()), common::Table::num(stats.mean_snr_db, 1)});
  }
  bench::emit(v, common::Config{});
  return 0;
}
