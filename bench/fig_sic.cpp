// E8 — Self-interference cancellation: carrier suppression and decode
// success vs SIC configuration, with the projector blast swept relative to
// the backscatter level. Also the equalizer ablation.
#include <iostream>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "dsp/mixer.hpp"
#include "phy/coding.hpp"
#include "phy/modem.hpp"

namespace {

using namespace vab;

// Synthetic capture: blast + modulated backscatter + white noise.
rvec make_capture(const phy::PhyConfig& cfg, const bitvec& payload, double mod_amp,
                  double blast_amp, double noise_rms, common::Rng& rng) {
  phy::BackscatterModulator mod(cfg);
  const bitvec states = mod.switch_waveform(payload);
  const bitvec mask = mod.active_mask(payload.size());
  const std::size_t n = states.size() + 1024;
  rvec x = dsp::make_tone(cfg.carrier_hz, cfg.fs_hz, n);
  for (std::size_t i = 0; i < n; ++i) {
    double coef = blast_amp;
    if (i < states.size() && mask[i]) coef += mod_amp * (states[i] ? 1.0 : -1.0);
    x[i] *= coef;
    x[i] += noise_rms * rng.gaussian();
  }
  return x;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vab;
  const auto cfg_args = common::Config::from_args(argc, argv);
  bench::banner("E8", "Self-interference cancellation",
                "the direct blast sits tens of dB above the backscatter; "
                "SIC recovers it");

  common::Rng rng(static_cast<std::uint64_t>(cfg_args.get_int("seed", 8)));
  bench::init_threads(cfg_args);
  bench::Stopwatch sw;

  struct RowResult {
    double suppression_db = 0.0;
    bool sync = false;
    std::size_t bit_errors = 0;
  };

  // Part 1: suppression + decode vs blast-to-signal ratio. Each capture is
  // self-contained (own child stream) — fan the rows out.
  const std::vector<double> bsrs{40.0, 60.0, 80.0, 90.0};
  std::vector<RowResult> part1(bsrs.size());
  common::parallel_for(0, bsrs.size(), [&](std::size_t i) {
    const double bsr_db = bsrs[i];
    phy::PhyConfig cfg;
    cfg.fs_hz = 96000.0;
    common::Rng local = rng.child(static_cast<std::uint64_t>(bsr_db));
    const bitvec payload = local.random_bits(64);
    const double mod_amp = std::pow(10.0, -bsr_db / 20.0);
    const rvec x = make_capture(cfg, payload, mod_amp, 1.0, mod_amp * 0.05, local);
    phy::ReaderDemodulator demod(cfg);
    const auto res = demod.demodulate(x, payload.size());
    part1[i] = {res.sic_suppression_db, res.sync_found,
                res.sync_found ? phy::hamming_distance(res.bits, payload) : 0};
  });
  common::Table t({"blast_over_signal_db", "sic_suppression_db", "sync", "bit_errors"});
  for (std::size_t i = 0; i < bsrs.size(); ++i) {
    t.add_row({common::Table::num(bsrs[i], 0),
               common::Table::num(part1[i].suppression_db, 1),
               part1[i].sync ? "yes" : "no",
               part1[i].sync ? std::to_string(part1[i].bit_errors) : "-"});
  }
  bench::emit(t, cfg_args);

  // Part 2: ablation of the receive-chain stages at 80 dB blast.
  std::cout << "receive-chain ablation (80 dB blast-to-signal):\n";
  struct Ablation {
    bool notch, eq;
  };
  const std::vector<Ablation> ablations{{true, true}, {true, false},
                                        {false, true}, {false, false}};
  std::vector<RowResult> part2(ablations.size());
  common::parallel_for(0, ablations.size(), [&](std::size_t i) {
    phy::PhyConfig cfg;
    cfg.fs_hz = 96000.0;
    cfg.sic.enable_dc_notch = ablations[i].notch;
    cfg.enable_equalizer = ablations[i].eq;
    common::Rng local =
        rng.child(static_cast<std::uint64_t>(ablations[i].notch * 2 +
                                             ablations[i].eq + 10));
    const bitvec payload = local.random_bits(64);
    const double mod_amp = 1e-4;
    const rvec x = make_capture(cfg, payload, mod_amp, 1.0, mod_amp * 0.05, local);
    phy::ReaderDemodulator demod(cfg);
    const auto res = demod.demodulate(x, payload.size());
    part2[i] = {res.sic_suppression_db, res.sync_found,
                res.sync_found ? phy::hamming_distance(res.bits, payload) : 0};
  });
  common::Table a({"dc_notch", "equalizer", "sync", "bit_errors"});
  for (std::size_t i = 0; i < ablations.size(); ++i) {
    a.add_row({ablations[i].notch ? "on" : "off", ablations[i].eq ? "on" : "off",
               part2[i].sync ? "yes" : "no",
               part2[i].sync ? std::to_string(part2[i].bit_errors) : "-"});
  }
  bench::emit(a, common::Config{});
  bench::emit_timing("E8", "sic_captures", sw.seconds(), bsrs.size() + ablations.size());
  return 0;
}
