// Extension bench — node discovery cost: slots (and airtime) to inventory an
// unknown population with adaptive framed slotted Aloha, vs population size
// and reply-loss rate.
#include <iostream>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "net/discovery.hpp"
#include "net/mac.hpp"

int main(int argc, char** argv) {
  using namespace vab;
  const auto cfg = common::Config::from_args(argc, argv);
  bench::banner("EXT-4", "Node discovery (slotted Aloha, adaptive Q)",
                "a freshly deployed field is inventoried without knowing any address");

  common::Rng rng(static_cast<std::uint64_t>(cfg.get_int("seed", 24)));
  const auto seeds = static_cast<std::size_t>(cfg.get_int("seeds", 20));
  bench::init_threads(cfg);
  bench::Stopwatch sw;
  const net::MacTiming timing{};
  const double slot_s = timing.slot_duration_s();

  common::Table t({"nodes", "loss", "avg_slots", "slots_per_node", "airtime_s",
                   "complete"});
  std::size_t runs = 0;
  for (std::size_t n : {4u, 8u, 16u, 32u, 64u}) {
    for (double loss : {0.0, 0.2}) {
      // Seeds are independent runs: fan them out, fold in seed order.
      struct SeedResult {
        std::size_t total_slots = 0;
        bool complete = false;
      };
      std::vector<SeedResult> per_seed(seeds);
      common::parallel_for(0, seeds, [&](std::size_t s) {
        std::vector<std::uint8_t> pop(n);
        for (std::size_t i = 0; i < n; ++i) pop[i] = static_cast<std::uint8_t>(i + 1);
        net::DiscoveryConfig dc;
        dc.reply_loss_prob = loss;
        dc.max_rounds = 256;
        common::Rng local =
            rng.child(n * 1000 + s + static_cast<std::uint64_t>(loss * 10));
        const auto res = net::run_discovery(pop, dc, local);
        per_seed[s] = {res.total_slots, res.complete};
      });
      double slots_acc = 0.0;
      std::size_t complete = 0;
      for (const auto& r : per_seed) {
        slots_acc += static_cast<double>(r.total_slots);
        if (r.complete) ++complete;
      }
      runs += seeds;
      const double avg_slots = slots_acc / static_cast<double>(seeds);
      t.add_row({std::to_string(n), common::Table::num(loss, 1),
                 common::Table::num(avg_slots, 1),
                 common::Table::num(avg_slots / static_cast<double>(n), 2),
                 common::Table::num(avg_slots * slot_s, 1),
                 std::to_string(complete) + "/" + std::to_string(seeds)});
    }
  }
  bench::emit(t, cfg);
  bench::emit_timing("EXT-4", "discovery_seeds", sw.seconds(), runs);
  std::cout << "framed slotted Aloha optimum is 1/0.368 = 2.72 slots per node;\n"
               "the adaptive-Q controller should sit within ~2x of that.\n";
  return 0;
}
