// E2 — Backscatter SNR vs interrogator orientation: the retrodirectivity
// figure. Van Atta keeps its full gain across +/-60 degrees; the fixed-phase
// reflect-array collapses off broadside; a single element is flat but tiny.
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "sim/linkbudget.hpp"
#include "sim/scenario.hpp"
#include "vanatta/pattern.hpp"
#include "vanatta/planar.hpp"

int main(int argc, char** argv) {
  using namespace vab;
  const auto cfg = common::Config::from_args(argc, argv);
  bench::banner("E2", "SNR vs orientation (retrodirectivity)",
                "range holds across orientations for VAB; non-retro arrays collapse");

  const double range = cfg.get_double("range_m", 200.0);
  bench::init_threads(cfg);
  bench::Stopwatch sw;
  common::Table t(
      {"angle_deg", "vanatta_snr_db", "fixed_array_snr_db", "single_elem_snr_db"});
  for (double deg = -60.0; deg <= 60.0 + 1e-9; deg += 10.0) {
    rvec row;
    for (auto mode : {vanatta::ArrayMode::kVanAtta, vanatta::ArrayMode::kFixedPhase,
                      vanatta::ArrayMode::kSingleElement}) {
      sim::Scenario s = sim::vab_river_scenario();
      s.node.array.mode = mode;
      if (mode == vanatta::ArrayMode::kSingleElement)
        s.node.array.scheme = vanatta::ModulationScheme::kOnOff;
      s.node.orientation_rad = common::deg_to_rad(deg);
      row.push_back(sim::LinkBudget(s).evaluate(common::Meters{range}).snr_chip_db.raw());
    }
    t.add_row({common::Table::num(deg, 0), common::Table::num(row[0], 1),
               common::Table::num(row[1], 1), common::Table::num(row[2], 1)});
  }
  bench::emit(t, cfg);

  // Field-of-view summary (3 dB drop) for the array itself.
  common::Table f({"mode", "retro_fov_deg_3dB"});
  for (auto [name, mode] : {std::pair{"van_atta", vanatta::ArrayMode::kVanAtta},
                            std::pair{"fixed_phase", vanatta::ArrayMode::kFixedPhase}}) {
    vanatta::VanAttaConfig ac = sim::vab_river_scenario().node.array;
    ac.mode = mode;
    f.add_row({name, common::Table::num(
                         vanatta::retro_fov_deg(vanatta::VanAttaArray(ac), 18500.0), 1)});
  }
  bench::emit(f, common::Config{});

  // Extension: planar (4x4) array — retro in elevation too, where the
  // per-row-paired grid (linear-array behaviour) collapses.
  std::cout << "planar extension (4x4, elevation sweep at azimuth 0):\n";
  common::Table p({"elevation_deg", "point_pair_gain_db", "row_pair_gain_db"});
  vanatta::PlanarVanAttaConfig pc;
  pc.rows = 4;
  pc.cols = 4;
  vanatta::PlanarVanAttaConfig rc2 = pc;
  rc2.point_reflection_pairing = false;
  const vanatta::PlanarVanAttaArray point(pc), row(rc2);
  for (double el = -45.0; el <= 45.0 + 1e-9; el += 15.0) {
    const vanatta::Direction d{0.0, common::deg_to_rad(el)};
    p.add_row({common::Table::num(el, 0),
               common::Table::num(point.monostatic_gain_db(d, 18500.0), 1),
               common::Table::num(row.monostatic_gain_db(d, 18500.0), 1)});
  }
  bench::emit(p, common::Config{});
  bench::emit_timing("E2", "orientation_sweep", sw.seconds(), 13 * 3 + 2 + 7);
  return 0;
}
