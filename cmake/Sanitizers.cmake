# First-class sanitizer wiring, replacing ad-hoc CMAKE_CXX_FLAGS injection.
#
# Usage:
#   cmake -B build -S . -DVAB_SANITIZE="address;undefined"
#   cmake -B build -S . -DVAB_SANITIZE=thread
#
# VAB_SANITIZE is a semicolon list drawn from: address, undefined, thread,
# leak. The undefined sanitizer is built with -fno-sanitize-recover so any
# UB aborts the process instead of logging and continuing — CI runs with
# halt_on_error so a single finding fails the job. address+thread are
# mutually exclusive (compiler restriction).
#
# Suppression files live in tools/sanitizers/ and are passed at *runtime*
# via ASAN_OPTIONS / UBSAN_OPTIONS / TSAN_OPTIONS (see ci.yml and the
# README "Static analysis & sanitizers" section); keeping them in-tree and
# versioned means a suppression is reviewed like any other change.

set(VAB_SANITIZE "" CACHE STRING
    "Semicolon list of sanitizers: address;undefined;thread;leak (empty = off)")

if(NOT VAB_SANITIZE)
  return()
endif()

set(_vab_san_known address undefined thread leak)
set(_vab_san_flags "")
foreach(_san IN LISTS VAB_SANITIZE)
  if(NOT _san IN_LIST _vab_san_known)
    message(FATAL_ERROR
        "VAB_SANITIZE: unknown sanitizer '${_san}' (expected one of: ${_vab_san_known})")
  endif()
  list(APPEND _vab_san_flags "-fsanitize=${_san}")
endforeach()

if("address" IN_LIST VAB_SANITIZE AND "thread" IN_LIST VAB_SANITIZE)
  message(FATAL_ERROR "VAB_SANITIZE: address and thread cannot be combined")
endif()

if("undefined" IN_LIST VAB_SANITIZE)
  # Abort on the first UB finding; recovering would let a corrupted value
  # propagate into seeded outputs and show up as a golden-pin mystery later.
  list(APPEND _vab_san_flags "-fno-sanitize-recover=undefined")
endif()

# Sanitized stacks need frame pointers for usable reports, and -O1 keeps
# interleaving realistic without optimizing away the checks' context.
list(APPEND _vab_san_flags "-fno-omit-frame-pointer" "-g")

add_compile_options(${_vab_san_flags})
add_link_options(${_vab_san_flags})

string(REPLACE ";" "+" _vab_san_label "${VAB_SANITIZE}")
message(STATUS "VAB_SANITIZE: building with ${_vab_san_label} "
               "(suppressions: tools/sanitizers/)")
