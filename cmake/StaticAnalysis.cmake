# Static-analysis and build-accelerator wiring: clang-tidy gate, clang-format
# check, the vab_lint domain linter, and ccache pickup.
#
# Targets (all no-ops with a warning when the host lacks the tool, so a
# g++-only container can still configure and build everything else):
#   cmake --build build --target tidy           # clang-tidy over src/, fails on findings
#   cmake --build build --target format-check   # clang-format --dry-run -Werror
#   cmake --build build --target format         # rewrites files in place
#   cmake --build build --target lint           # tools/vab_lint.py over src/

# ccache: transparently accelerates the CI sanitizer/tidy matrix; harmless
# locally. Opt out with -DVAB_CCACHE=OFF (e.g. when profiling compile time).
option(VAB_CCACHE "Use ccache as compiler launcher when available" ON)
if(VAB_CCACHE)
  find_program(VAB_CCACHE_EXE ccache)
  if(VAB_CCACHE_EXE)
    set(CMAKE_CXX_COMPILER_LAUNCHER "${VAB_CCACHE_EXE}" CACHE STRING "" FORCE)
    message(STATUS "ccache: enabled (${VAB_CCACHE_EXE})")
  endif()
endif()

# clang-tidy needs the compilation database to resolve includes and flags.
set(CMAKE_EXPORT_COMPILE_COMMANDS ON)

find_program(VAB_CLANG_TIDY_EXE NAMES clang-tidy clang-tidy-18 clang-tidy-17
                                      clang-tidy-16 clang-tidy-15 clang-tidy-14)
find_program(VAB_CLANG_FORMAT_EXE NAMES clang-format clang-format-18
                                        clang-format-17 clang-format-16
                                        clang-format-15 clang-format-14)
find_package(Python3 COMPONENTS Interpreter QUIET)

set(_vab_analysed_globs
    "${PROJECT_SOURCE_DIR}/src/*/*.cpp" "${PROJECT_SOURCE_DIR}/src/*/*.hpp")

if(VAB_CLANG_TIDY_EXE AND Python3_FOUND)
  add_custom_target(tidy
      COMMAND "${Python3_EXECUTABLE}" "${PROJECT_SOURCE_DIR}/tools/run_tidy.py"
              --clang-tidy "${VAB_CLANG_TIDY_EXE}"
              --build-dir "${CMAKE_BINARY_DIR}"
              "${PROJECT_SOURCE_DIR}/src"
      WORKING_DIRECTORY "${PROJECT_SOURCE_DIR}"
      COMMENT "clang-tidy over src/ (fails on findings)"
      VERBATIM)
else()
  add_custom_target(tidy
      COMMAND "${CMAKE_COMMAND}" -E echo
              "tidy: clang-tidy or python3 not found on this host; skipping"
      COMMENT "clang-tidy unavailable")
endif()

if(VAB_CLANG_FORMAT_EXE)
  file(GLOB_RECURSE _vab_format_files
       "${PROJECT_SOURCE_DIR}/src/*.[ch]pp"
       "${PROJECT_SOURCE_DIR}/tests/*.[ch]pp"
       "${PROJECT_SOURCE_DIR}/bench/*.[ch]pp"
       "${PROJECT_SOURCE_DIR}/examples/*.[ch]pp")
  add_custom_target(format-check
      COMMAND "${VAB_CLANG_FORMAT_EXE}" --dry-run -Werror ${_vab_format_files}
      COMMENT "clang-format check (dry run)"
      VERBATIM)
  add_custom_target(format
      COMMAND "${VAB_CLANG_FORMAT_EXE}" -i ${_vab_format_files}
      COMMENT "clang-format in place"
      VERBATIM)
else()
  foreach(_t format-check format)
    add_custom_target(${_t}
        COMMAND "${CMAKE_COMMAND}" -E echo
                "${_t}: clang-format not found on this host; skipping"
        COMMENT "clang-format unavailable")
  endforeach()
endif()

if(Python3_FOUND)
  add_custom_target(lint
      COMMAND "${Python3_EXECUTABLE}" "${PROJECT_SOURCE_DIR}/tools/vab_lint.py"
              "${PROJECT_SOURCE_DIR}/src"
      WORKING_DIRECTORY "${PROJECT_SOURCE_DIR}"
      COMMENT "vab_lint determinism/hygiene linter over src/"
      VERBATIM)
endif()
