#!/usr/bin/env python3
"""Validates the observability artifacts a bench run emits.

Usage: check_obs.py METRICS_JSON TRACE_JSON

Checks the metrics snapshot (schema vab-metrics-v1) and the Chrome trace
(trace-event JSON as loaded by Perfetto / chrome://tracing):
  - both parse and carry a complete run manifest,
  - the metrics snapshot has the parallel-engine counters (worker busy/idle,
    queue-wait histogram) and at least one per-stage pipeline timing,
  - snapshot sections are alphabetically ordered (the determinism contract),
  - histograms are shape-consistent (len(counts) == len(bounds) + 1),
  - the trace contains well-formed complete events.

Exits non-zero with a message on the first violation.
"""

import json
import sys

REQUIRED_MANIFEST_KEYS = ["build_type", "library", "threads", "version"]
REQUIRED_COUNTERS = [
    "parallel.tasks",
    "parallel.worker_busy_ns",
    "parallel.worker_idle_ns",
]
REQUIRED_HISTOGRAMS = ["parallel.queue_wait_ns"]


def fail(msg):
    print(f"check_obs: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_manifest(manifest, where):
    if not isinstance(manifest, dict):
        fail(f"{where}: manifest is not an object")
    for key in REQUIRED_MANIFEST_KEYS:
        if key not in manifest:
            fail(f"{where}: manifest missing '{key}'")


def check_metrics(path):
    with open(path) as f:
        snap = json.load(f)
    if snap.get("schema") != "vab-metrics-v1":
        fail(f"{path}: schema is {snap.get('schema')!r}, expected 'vab-metrics-v1'")
    check_manifest(snap.get("manifest"), path)

    for section in ("counters", "gauges", "histograms"):
        if section not in snap:
            fail(f"{path}: missing '{section}' section")
        keys = list(snap[section].keys())
        if keys != sorted(keys):
            fail(f"{path}: '{section}' keys are not alphabetically ordered")

    counters = snap["counters"]
    for name in REQUIRED_COUNTERS:
        if name not in counters:
            fail(f"{path}: counters missing '{name}'")
        if not isinstance(counters[name], int) or counters[name] < 0:
            fail(f"{path}: counter '{name}' is not a non-negative integer")
    if not any(k.startswith("stage.") and k.endswith(".ns") for k in counters):
        fail(f"{path}: no per-stage pipeline timing (stage.*.ns) counters")

    for name, h in snap["histograms"].items():
        for field in ("bounds", "counts", "count", "sum"):
            if field not in h:
                fail(f"{path}: histogram '{name}' missing '{field}'")
        if len(h["counts"]) != len(h["bounds"]) + 1:
            fail(f"{path}: histogram '{name}' has {len(h['counts'])} counts "
                 f"for {len(h['bounds'])} bounds (want bounds+1)")
        if sum(h["counts"]) != h["count"]:
            fail(f"{path}: histogram '{name}' counts do not sum to 'count'")
        if h["bounds"] != sorted(h["bounds"]):
            fail(f"{path}: histogram '{name}' bounds are not ascending")
    for name in REQUIRED_HISTOGRAMS:
        if name not in snap["histograms"]:
            fail(f"{path}: histograms missing '{name}'")

    print(f"check_obs: {path}: ok "
          f"({len(counters)} counters, {len(snap['histograms'])} histograms)")


def check_trace(path):
    with open(path) as f:
        trace = json.load(f)
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")
    check_manifest(trace.get("otherData", {}).get("manifest"), path)

    complete, prev_ts = 0, None
    for e in events:
        ph = e.get("ph")
        if ph not in ("X", "M"):
            fail(f"{path}: unexpected event phase {ph!r}")
        if ph != "X":
            continue
        complete += 1
        for field in ("name", "ts", "dur", "pid", "tid"):
            if field not in e:
                fail(f"{path}: complete event missing '{field}': {e}")
        if e["dur"] < 0:
            fail(f"{path}: negative duration in {e}")
        if prev_ts is not None and e["ts"] < prev_ts:
            fail(f"{path}: complete events not sorted by ts")
        prev_ts = e["ts"]
    if complete == 0:
        fail(f"{path}: no complete ('X') span events")

    names = {e["name"] for e in events if e.get("ph") == "X"}
    if not any(n.startswith(("wave.", "demod.", "linkbudget.", "sim.")) for n in names):
        fail(f"{path}: no pipeline spans found (got {sorted(names)[:10]})")

    print(f"check_obs: {path}: ok ({complete} spans, {len(names)} distinct names)")


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    check_metrics(sys.argv[1])
    check_trace(sys.argv[2])
    print("check_obs: all checks passed")


if __name__ == "__main__":
    main()
