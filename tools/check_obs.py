#!/usr/bin/env python3
"""Validates the observability artifacts a bench run emits.

Usage: check_obs.py METRICS_JSON [TRACE_JSON] [--series S.jsonl] [--profile P.json]

Checks the metrics snapshot (schema vab-metrics-v1), the Chrome trace
(trace-event JSON as loaded by Perfetto / chrome://tracing), and optionally
a vab-series-v1 JSONL stream and a vab-profile-v1 span aggregation:
  - every artifact parses and carries a complete run manifest,
  - the metrics snapshot has the parallel-engine counters (worker busy/idle,
    queue-wait histogram) and at least one per-stage pipeline timing,
  - snapshot sections are alphabetically ordered (the determinism contract),
  - histograms are shape-consistent (len(counts) == len(bounds) + 1),
  - the trace contains well-formed complete events,
  - series points have monotonic window numbers, finite virtual timestamps
    and key-sorted label/value objects,
  - profile stages are alphabetical with 0 <= self_ns <= total_ns and a
    well-formed sorted folded-stack section.

Exits non-zero with a message on the first violation.
"""

import argparse
import json
import math
import sys

REQUIRED_MANIFEST_KEYS = ["build_type", "library", "threads", "version"]
REQUIRED_COUNTERS = [
    "parallel.tasks",
    "parallel.worker_busy_ns",
    "parallel.worker_idle_ns",
]
REQUIRED_HISTOGRAMS = ["parallel.queue_wait_ns"]


def fail(msg):
    print(f"check_obs: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_manifest(manifest, where):
    if not isinstance(manifest, dict):
        fail(f"{where}: manifest is not an object")
    for key in REQUIRED_MANIFEST_KEYS:
        if key not in manifest:
            fail(f"{where}: manifest missing '{key}'")


def check_metrics(path):
    with open(path) as f:
        snap = json.load(f)
    if snap.get("schema") != "vab-metrics-v1":
        fail(f"{path}: schema is {snap.get('schema')!r}, expected 'vab-metrics-v1'")
    check_manifest(snap.get("manifest"), path)

    for section in ("counters", "gauges", "histograms"):
        if section not in snap:
            fail(f"{path}: missing '{section}' section")
        keys = list(snap[section].keys())
        if keys != sorted(keys):
            fail(f"{path}: '{section}' keys are not alphabetically ordered")

    counters = snap["counters"]
    for name in REQUIRED_COUNTERS:
        if name not in counters:
            fail(f"{path}: counters missing '{name}'")
        if not isinstance(counters[name], int) or counters[name] < 0:
            fail(f"{path}: counter '{name}' is not a non-negative integer")
    if not any(k.startswith("stage.") and k.endswith(".ns") for k in counters):
        fail(f"{path}: no per-stage pipeline timing (stage.*.ns) counters")

    for name, h in snap["histograms"].items():
        for field in ("bounds", "counts", "count", "sum"):
            if field not in h:
                fail(f"{path}: histogram '{name}' missing '{field}'")
        if len(h["counts"]) != len(h["bounds"]) + 1:
            fail(f"{path}: histogram '{name}' has {len(h['counts'])} counts "
                 f"for {len(h['bounds'])} bounds (want bounds+1)")
        if sum(h["counts"]) != h["count"]:
            fail(f"{path}: histogram '{name}' counts do not sum to 'count'")
        if h["bounds"] != sorted(h["bounds"]):
            fail(f"{path}: histogram '{name}' bounds are not ascending")
    for name in REQUIRED_HISTOGRAMS:
        if name not in snap["histograms"]:
            fail(f"{path}: histograms missing '{name}'")

    print(f"check_obs: {path}: ok "
          f"({len(counters)} counters, {len(snap['histograms'])} histograms)")


def check_trace(path):
    with open(path) as f:
        trace = json.load(f)
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")
    check_manifest(trace.get("otherData", {}).get("manifest"), path)

    complete, prev_ts = 0, None
    for e in events:
        ph = e.get("ph")
        if ph not in ("X", "M"):
            fail(f"{path}: unexpected event phase {ph!r}")
        if ph != "X":
            continue
        complete += 1
        for field in ("name", "ts", "dur", "pid", "tid"):
            if field not in e:
                fail(f"{path}: complete event missing '{field}': {e}")
        if e["dur"] < 0:
            fail(f"{path}: negative duration in {e}")
        if prev_ts is not None and e["ts"] < prev_ts:
            fail(f"{path}: complete events not sorted by ts")
        prev_ts = e["ts"]
    if complete == 0:
        fail(f"{path}: no complete ('X') span events")

    names = {e["name"] for e in events if e.get("ph") == "X"}
    if not any(n.startswith(("wave.", "demod.", "linkbudget.", "sim.")) for n in names):
        fail(f"{path}: no pipeline spans found (got {sorted(names)[:10]})")

    print(f"check_obs: {path}: ok ({complete} spans, {len(names)} distinct names)")


def check_series(path):
    with open(path) as f:
        lines = [line for line in f.read().splitlines() if line.strip()]
    if not lines:
        fail(f"{path}: series file is empty")
    header = json.loads(lines[0])
    if header.get("schema") != "vab-series-v1":
        fail(f"{path}: header schema is {header.get('schema')!r}, "
             "expected 'vab-series-v1'")
    if not isinstance(header.get("stream"), str) or not header["stream"]:
        fail(f"{path}: header missing a non-empty 'stream'")
    check_manifest(header.get("manifest"), path)

    prev_w = None
    for i, line in enumerate(lines[1:], start=2):
        p = json.loads(line)
        for field in ("w", "t_s", "v"):
            if field not in p:
                fail(f"{path}:{i}: point missing '{field}'")
        if not isinstance(p["w"], int) or p["w"] < 0:
            fail(f"{path}:{i}: 'w' is not a non-negative integer")
        if prev_w is not None and p["w"] < prev_w:
            fail(f"{path}:{i}: window numbers regress ({p['w']} < {prev_w})")
        prev_w = p["w"]
        if not isinstance(p["t_s"], (int, float)) or not math.isfinite(p["t_s"]):
            fail(f"{path}:{i}: 't_s' is not a finite number")
        if not isinstance(p["v"], dict) or not p["v"]:
            fail(f"{path}:{i}: 'v' is not a non-empty object")
        for obj_name in ("labels", "v"):
            if obj_name not in p:
                continue
            keys = list(p[obj_name].keys())
            if keys != sorted(keys):
                fail(f"{path}:{i}: '{obj_name}' keys are not sorted")
    print(f"check_obs: {path}: ok ({len(lines) - 1} points, "
          f"stream '{header['stream']}')")


def check_profile(path):
    with open(path) as f:
        prof = json.load(f)
    if prof.get("schema") != "vab-profile-v1":
        fail(f"{path}: schema is {prof.get('schema')!r}, expected 'vab-profile-v1'")
    check_manifest(prof.get("manifest"), path)
    if not isinstance(prof.get("dropped"), int) or prof["dropped"] < 0:
        fail(f"{path}: 'dropped' is not a non-negative integer")

    stages = prof.get("stages")
    if not isinstance(stages, dict) or not stages:
        fail(f"{path}: 'stages' missing or empty")
    if list(stages.keys()) != sorted(stages.keys()):
        fail(f"{path}: stage names are not alphabetically ordered")
    for name, s in stages.items():
        for field in ("calls", "total_ns", "self_ns"):
            if not isinstance(s.get(field), int) or s[field] < 0:
                fail(f"{path}: stage '{name}' field '{field}' is not a "
                     "non-negative integer")
        if s["calls"] < 1:
            fail(f"{path}: stage '{name}' has zero calls")
        if s["self_ns"] > s["total_ns"]:
            fail(f"{path}: stage '{name}' self_ns {s['self_ns']} exceeds "
                 f"total_ns {s['total_ns']}")

    folded = prof.get("folded")
    if not isinstance(folded, list):
        fail(f"{path}: 'folded' missing")
    paths = []
    for entry in folded:
        if (not isinstance(entry, list) or len(entry) != 2
                or not isinstance(entry[0], str) or not entry[0]
                or not isinstance(entry[1], int) or entry[1] < 0):
            fail(f"{path}: malformed folded entry {entry!r}")
        paths.append(entry[0])
    if paths != sorted(paths):
        fail(f"{path}: folded paths are not sorted")
    print(f"check_obs: {path}: ok ({len(stages)} stages, "
          f"{len(folded)} folded stacks)")


def main():
    parser = argparse.ArgumentParser(add_help=False)
    parser.add_argument("metrics")
    parser.add_argument("trace", nargs="?")
    parser.add_argument("--series")
    parser.add_argument("--profile")
    try:
        args = parser.parse_args()
    except SystemExit:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    check_metrics(args.metrics)
    if args.trace:
        check_trace(args.trace)
    if args.series:
        check_series(args.series)
    if args.profile:
        check_profile(args.profile)
    print("check_obs: all checks passed")


if __name__ == "__main__":
    main()
