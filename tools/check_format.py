#!/usr/bin/env python3
"""Compiler-free format gate: the structural half of .clang-format.

clang-format is authoritative (CI runs `--dry-run -Werror` with the pinned
version), but it is not installed everywhere this repo builds. This checker
enforces the style rules that never depend on clang-format's version or
reflow decisions, so every environment — including g++-only containers —
can hold the line on:

  - no tabs in source files
  - no trailing whitespace
  - LF line endings (no CRLF)
  - file ends with exactly one newline
  - lines within the 90-column limit from .clang-format
    (URLs and lines tagged NOLINT are exempt: breaking either helps nobody)

Usage: tools/check_format.py [root ...]   (default: src tests bench examples tools)
Exit: 0 clean, 1 findings.
"""

from __future__ import annotations

import sys

COLUMN_LIMIT = 90
DEFAULT_ROOTS = ["src", "tests", "bench", "examples", "tools"]
EXTENSIONS = (".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h")


def check_file(path: str) -> list[str]:
    with open(path, "rb") as fh:
        data = fh.read()
    problems = []
    if b"\r" in data:
        problems.append(f"{path}: CRLF line endings")
    if data and not data.endswith(b"\n"):
        problems.append(f"{path}: missing final newline")
    if data.endswith(b"\n\n"):
        problems.append(f"{path}: trailing blank line(s) at EOF")
    text = data.decode("utf-8", errors="replace")
    for i, line in enumerate(text.splitlines(), start=1):
        if "\t" in line:
            problems.append(f"{path}:{i}: tab character")
        if line != line.rstrip():
            problems.append(f"{path}:{i}: trailing whitespace")
        if (len(line) > COLUMN_LIMIT and "http://" not in line
                and "https://" not in line and "NOLINT" not in line):
            problems.append(f"{path}:{i}: line exceeds {COLUMN_LIMIT} columns "
                            f"({len(line)})")
    return problems


def main() -> int:
    import os

    roots = sys.argv[1:] or DEFAULT_ROOTS
    files = []
    for root in roots:
        if os.path.isfile(root):
            files.append(root)
            continue
        for dirpath, _, names in os.walk(root):
            if "lint_fixtures" in dirpath:
                continue  # fixtures demonstrate violations on purpose
            files.extend(os.path.join(dirpath, n) for n in sorted(names)
                         if n.endswith(EXTENSIONS))
    problems = []
    for path in sorted(set(files)):
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    print(f"check_format: {len(files)} files, {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
