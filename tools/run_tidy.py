#!/usr/bin/env python3
"""clang-tidy driver for the `tidy` build target and the CI gate.

Runs clang-tidy (configuration from the repo-root .clang-tidy) over every
translation unit below the given roots that appears in the build's
compile_commands.json, in parallel, and exits non-zero if any finding is
emitted. This is deliberately a *zero-findings* gate rather than a
diff-relative one: the tree is kept clean, so "new findings" and "findings"
coincide and the gate needs no baseline bookkeeping.

Usage:
  tools/run_tidy.py --build-dir build [--clang-tidy clang-tidy-18] [src ...]
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys

# clang-tidy exits 0 even when it prints warnings (unless -warnings-as-errors
# is set); match finding lines ourselves so the gate is independent of
# version-specific exit-code behavior.
FINDING_RE = re.compile(r"^[^ ]+:\d+:\d+: (?:warning|error): ", re.MULTILINE)


def load_database(build_dir: str) -> list[dict]:
    path = os.path.join(build_dir, "compile_commands.json")
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except OSError as exc:
        sys.exit(f"run_tidy: cannot read {path} ({exc}); "
                 "configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON first")


def select_files(database: list[dict], roots: list[str]) -> list[str]:
    absroots = [os.path.abspath(r) for r in roots]
    files = set()
    for entry in database:
        path = os.path.abspath(os.path.join(entry["directory"], entry["file"]))
        if any(os.path.commonpath([path, r]) == r for r in absroots if os.path.isdir(r)):
            files.add(path)
    return sorted(files)


def run_one(clang_tidy: str, build_dir: str, path: str) -> tuple[str, str, int]:
    proc = subprocess.run(
        [clang_tidy, "-p", build_dir, "--quiet", path],
        capture_output=True, text=True, check=False)
    findings = len(FINDING_RE.findall(proc.stdout))
    # Hard tool failures (bad flags, crashes) must fail the gate too.
    if proc.returncode != 0 and findings == 0:
        findings = 1
    return path, proc.stdout + proc.stderr, findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("roots", nargs="*", default=["src"],
                        help="directories whose TUs get linted (default: src)")
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--clang-tidy", default="clang-tidy")
    parser.add_argument("-j", "--jobs", type=int, default=os.cpu_count() or 2)
    args = parser.parse_args()

    if shutil.which(args.clang_tidy) is None:
        sys.exit(f"run_tidy: {args.clang_tidy} not found on PATH")

    files = select_files(load_database(args.build_dir), args.roots or ["src"])
    if not files:
        sys.exit("run_tidy: no translation units matched; check the roots")

    total = 0
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for path, output, findings in pool.map(
                lambda p: run_one(args.clang_tidy, args.build_dir, p), files):
            if findings:
                total += findings
                rel = os.path.relpath(path)
                print(f"== {rel}: {findings} finding(s)")
                print(output.rstrip())

    print(f"run_tidy: {len(files)} TUs, {total} finding(s)")
    return 1 if total else 0


if __name__ == "__main__":
    sys.exit(main())
