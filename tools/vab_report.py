#!/usr/bin/env python3
"""Renders a run's observability artifacts into a human-readable report,
and diffs two runs at the metric level.

A "run" is a directory holding any of `metrics.json` (vab-metrics-v1),
`series.jsonl` (vab-series-v1) and `profile.json` (vab-profile-v1), or the
artifacts can be named explicitly with --metrics/--series/--profile.

Render:  vab_report.py RUN [--top N]
Folded:  vab_report.py RUN --folded   (bare flamegraph.pl input, no report)
Diff:    vab_report.py --diff RUN_A RUN_B

The diff compares only the *deterministic* class of metrics — protocol
counters, gauges, histograms, every series point, and profiler call counts.
Timing and scheduling metrics (anything named *.ns / *_ns, and the
parallel. / dsp.workspace. / dsp.fft.plan / obs.trace. /
channel.noise.sigma_ namespaces) vary run to run by design and are skipped;
manifest differences are reported as informational. Two identical-seed runs
must therefore diff clean — CI uses exactly that as the telemetry
determinism gate.

Exit codes: 0 = rendered / no deltas, 1 = deltas found, 2 = usage error.
"""

import argparse
import json
import os
import sys

TIMING_PREFIXES = (
    "parallel.",
    "dsp.workspace.",
    "dsp.fft.plan",
    "obs.trace.",
    "channel.noise.sigma_",
)


def usage_error(msg):
    print(f"vab_report: {msg}", file=sys.stderr)
    sys.exit(2)


def base_name(name):
    """Metric name with any {k=v,...} label suffix stripped."""
    return name.split("{", 1)[0]


def parse_labels(name):
    """Returns (base, {k: v}) for 'name{k=v,k2=v2}', ({} for plain names)."""
    if "{" not in name or not name.endswith("}"):
        return name, {}
    base, raw = name.split("{", 1)
    raw = raw[:-1]
    if raw == "overflow":
        return base, {"overflow": ""}
    labels = {}
    for part in raw.split(","):
        k, _, v = part.partition("=")
        labels[k] = v
    return base, labels


def is_timing_metric(name):
    b = base_name(name)
    if b.endswith(".ns") or b.endswith("_ns"):
        return True
    return any(b.startswith(p) for p in TIMING_PREFIXES)


def load_run(arg, metrics=None, series=None, profile=None):
    """Resolves a run argument (directory or metrics file) plus overrides
    into {'metrics': obj|None, 'series': [points]|None, 'profile': obj|None,
    'name': str}."""
    run = {"metrics": None, "series": None, "profile": None, "name": arg}
    m_path, s_path, p_path = metrics, series, profile
    if arg:
        if os.path.isdir(arg):
            m_path = m_path or os.path.join(arg, "metrics.json")
            s_path = s_path or os.path.join(arg, "series.jsonl")
            p_path = p_path or os.path.join(arg, "profile.json")
            m_path = m_path if os.path.exists(m_path) else None
            s_path = s_path if os.path.exists(s_path) else None
            p_path = p_path if os.path.exists(p_path) else None
        elif os.path.exists(arg):
            m_path = m_path or arg
        else:
            usage_error(f"no such run: {arg}")
    if m_path:
        with open(m_path) as f:
            run["metrics"] = json.load(f)
    if s_path:
        with open(s_path) as f:
            run["series"] = [json.loads(line)
                             for line in f.read().splitlines() if line.strip()]
    if p_path:
        with open(p_path) as f:
            run["profile"] = json.load(f)
    if not any((run["metrics"], run["series"], run["profile"])):
        usage_error(f"run '{arg}' has no metrics.json/series.jsonl/profile.json")
    return run


# --- render ----------------------------------------------------------------


def fmt_count(v):
    return f"{v:,}" if isinstance(v, int) else f"{v:g}"


def render_manifest(manifest):
    print("manifest:")
    for key in ("library", "version", "build_type", "threads", "seed"):
        if key in manifest:
            print(f"  {key:12s} {manifest[key]}")
    cfg = {k: v for k, v in sorted(manifest.items()) if k.startswith("config.")}
    for k, v in cfg.items():
        print(f"  {k:12s} {v}")
    print()


def render_metrics(snap, top):
    counters = snap.get("counters", {})
    plain, families = {}, {}
    for name, v in counters.items():
        base, labels = parse_labels(name)
        if labels:
            families.setdefault(base, []).append((labels, v))
        else:
            plain[name] = v

    print(f"counters ({len(counters)}):")
    groups = {}
    for name, v in plain.items():
        groups.setdefault(name.split(".", 1)[0], []).append((name, v))
    for group in sorted(groups):
        for name, v in groups[group]:
            print(f"  {name:44s} {fmt_count(v):>16s}")
    print()

    if families:
        print("labeled breakdowns:")
        for base in sorted(families):
            total = sum(v for _, v in families[base])
            print(f"  {base} (sum over {len(families[base])} series: "
                  f"{fmt_count(total)})")
            for labels, v in families[base]:
                tag = ",".join(f"{k}={val}" if val else k
                               for k, val in sorted(labels.items()))
                print(f"    {{{tag}}}".ljust(44) + f" {fmt_count(v):>16s}")
        print()

    gauges = snap.get("gauges", {})
    if gauges:
        print(f"gauges ({len(gauges)}):")
        for name, v in gauges.items():
            print(f"  {name:44s} {fmt_count(v):>16s}")
        print()

    hists = snap.get("histograms", {})
    if hists:
        print(f"histograms ({len(hists)}):")
        for name, h in hists.items():
            mean = h["sum"] / h["count"] if h["count"] else 0.0
            print(f"  {name:44s} count={h['count']:,} mean={mean:,.0f}")
        print()
    del top


def render_series(points, name):
    if not points:
        return
    header, data = points[0], points[1:]
    stream = header.get("stream", "?")
    print(f"series '{stream}' ({len(data)} points) [{name}]:")
    if not data:
        print()
        return
    t_lo, t_hi = data[0].get("t_s", 0.0), data[-1].get("t_s", 0.0)
    print(f"  windows {data[0].get('w')}..{data[-1].get('w')}, "
          f"virtual time {t_lo:g}s..{t_hi:g}s")
    sums = {}
    for p in data:
        for k, v in p.get("v", {}).items():
            if isinstance(v, int):
                sums[k] = sums.get(k, 0) + v
    for k in sorted(sums):
        print(f"  sum {k:40s} {sums[k]:>16,}")
    print()


def render_profile(prof, top):
    stages = prof.get("stages", {})
    if prof.get("dropped", 0):
        print(f"profile: WARNING: {prof['dropped']} spans were dropped "
              "(ring overflow); attribution is partial")
    ranked = sorted(stages.items(), key=lambda kv: -kv[1]["self_ns"])[:top]
    print(f"profile: top {len(ranked)} of {len(stages)} stages by self time:")
    print(f"  {'stage':36s} {'calls':>10s} {'total_ms':>12s} {'self_ms':>12s}")
    for name, s in ranked:
        print(f"  {name:36s} {s['calls']:>10,} "
              f"{s['total_ns'] / 1e6:>12.3f} {s['self_ns'] / 1e6:>12.3f}")
    print()


def render_folded(run):
    # Bare "path self_ns" lines only, so the output pipes straight into
    # flamegraph.pl without any report furniture mixed in.
    prof = run["profile"]
    if not prof:
        usage_error(f"{run['name']}: no profile artifact for --folded")
    for path, self_ns in prof.get("folded", []):
        print(f"{path} {self_ns}")


def render(run, top):
    snap = run["metrics"]
    if snap:
        render_manifest(snap.get("manifest", {}))
        render_metrics(snap, top)
    if run["series"]:
        render_series(run["series"], run["name"])
    if run["profile"]:
        if not snap:
            render_manifest(run["profile"].get("manifest", {}))
        render_profile(run["profile"], top)


# --- diff ------------------------------------------------------------------


class Diff:
    def __init__(self):
        self.deltas = 0

    def report(self, what, a, b):
        self.deltas += 1
        print(f"DELTA {what}: {a!r} != {b!r}")

    def info(self, msg):
        print(f"note  {msg}")


def diff_section(d, section, a, b):
    keys_a = {k for k in a if not is_timing_metric(k)}
    keys_b = {k for k in b if not is_timing_metric(k)}
    for k in sorted(keys_a - keys_b):
        d.report(f"{section} '{k}' only in first run", a[k], None)
    for k in sorted(keys_b - keys_a):
        d.report(f"{section} '{k}' only in second run", None, b[k])
    for k in sorted(keys_a & keys_b):
        if a[k] != b[k]:
            d.report(f"{section} '{k}'", a[k], b[k])


def diff_manifest(d, a, b):
    for k in sorted(set(a) | set(b)):
        if a.get(k) != b.get(k):
            d.info(f"manifest '{k}' differs (informational): "
                   f"{a.get(k)!r} vs {b.get(k)!r}")


def diff_metrics(d, a, b):
    diff_manifest(d, a.get("manifest", {}), b.get("manifest", {}))
    diff_section(d, "counter", a.get("counters", {}), b.get("counters", {}))
    diff_section(d, "gauge", a.get("gauges", {}), b.get("gauges", {}))
    diff_section(d, "histogram", a.get("histograms", {}), b.get("histograms", {}))


def diff_series(d, a, b):
    ha, hb = a[0], b[0]
    if ha.get("stream") != hb.get("stream"):
        d.report("series stream", ha.get("stream"), hb.get("stream"))
    diff_manifest(d, ha.get("manifest", {}), hb.get("manifest", {}))
    pa, pb = a[1:], b[1:]
    if len(pa) != len(pb):
        d.report("series point count", len(pa), len(pb))
    for i, (x, y) in enumerate(zip(pa, pb)):
        if x != y:
            d.report(f"series point {i}", x, y)
            if d.deltas > 20:
                d.info("more series deltas suppressed")
                break


def diff_profile(d, a, b):
    if a.get("dropped", 0) or b.get("dropped", 0):
        d.info("profile diff skipped: spans were dropped "
               f"({a.get('dropped', 0)} vs {b.get('dropped', 0)})")
        return
    calls_a = {k: v["calls"] for k, v in a.get("stages", {}).items()}
    calls_b = {k: v["calls"] for k, v in b.get("stages", {}).items()}
    diff_section(d, "profile calls", calls_a, calls_b)


def diff(run_a, run_b):
    d = Diff()
    for key, fn in (("metrics", diff_metrics), ("series", diff_series),
                    ("profile", diff_profile)):
        have_a, have_b = run_a[key] is not None, run_b[key] is not None
        if have_a != have_b:
            d.info(f"{key} present in only one run; skipped")
        elif have_a:
            fn(d, run_a[key], run_b[key])
    if d.deltas:
        print(f"vab_report: {d.deltas} metric delta(s) between "
              f"'{run_a['name']}' and '{run_b['name']}'")
        return 1
    print(f"vab_report: no metric deltas between "
          f"'{run_a['name']}' and '{run_b['name']}'")
    return 0


def main():
    parser = argparse.ArgumentParser(add_help=False)
    parser.add_argument("runs", nargs="*")
    parser.add_argument("--diff", action="store_true")
    parser.add_argument("--metrics")
    parser.add_argument("--series")
    parser.add_argument("--profile")
    parser.add_argument("--top", type=int, default=12)
    parser.add_argument("--folded", action="store_true")
    parser.add_argument("-h", "--help", action="store_true")
    try:
        args = parser.parse_args()
    except SystemExit:
        usage_error("bad arguments (see --help)")
    if args.help:
        print(__doc__)
        sys.exit(0)

    if args.diff:
        if len(args.runs) != 2:
            usage_error("--diff needs exactly two runs")
        sys.exit(diff(load_run(args.runs[0]), load_run(args.runs[1])))

    if len(args.runs) > 1:
        usage_error("render mode takes one run")
    arg = args.runs[0] if args.runs else ""
    if not arg and not (args.metrics or args.series or args.profile):
        usage_error("nothing to render (pass a run dir or --metrics/...)")
    run = load_run(arg, args.metrics, args.series, args.profile)
    if args.folded:
        render_folded(run)
    else:
        render(run, args.top)
    sys.exit(0)


if __name__ == "__main__":
    main()
