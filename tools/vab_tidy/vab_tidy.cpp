// vab-tidy libTooling twin: AST-grade implementation of the check families
// that benefit from real semantic analysis. The portable Python engine
// (vab_tidy.py) is the gating implementation everywhere; this binary builds
// only where a clang development install exists (tools/vab_tidy/CMakeLists
// gates on find_package(Clang CONFIG)), and must agree with the Python
// engine on the fixture set (tools/test_vab_tidy.py pins the diagnostics).
//
// Families implemented on the AST:
//   unit-suffix-double-param  ParmVarDecl of builtin double whose name ends
//                             in _db/_hz/_m/_s inside a header — an actual
//                             parameter declaration, so fields, locals,
//                             macros and string literals can never confuse
//                             it the way a tokenizer must be careful about.
//   rng-parallel-capture      A LambdaExpr argument of a parallel_for /
//                             parallel_reduce call whose body contains a
//                             CXXMemberCallExpr drawing from a variable
//                             captured by the lambda (not derived via
//                             .child(...) inside the body).
//
// The layering and unordered-iteration families stay in the Python engine:
// they are include-graph and dataflow questions where the AST adds little
// over the resolved compile_commands include table.
//
// Usage: vab-tidy-ast -p <build-dir> <source files...>

#include <string>

#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Frontend/FrontendActions.h"
#include "clang/Tooling/CommonOptionsParser.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/CommandLine.h"
#include "llvm/Support/raw_ostream.h"

namespace {

using namespace clang;            // NOLINT(build/namespaces)
using namespace clang::ast_matchers;  // NOLINT(build/namespaces)

llvm::cl::OptionCategory g_category("vab-tidy options");

int g_findings = 0;

bool has_unit_suffix(llvm::StringRef name) {
  return name.ends_with("_db") || name.ends_with("_hz") ||
         name.ends_with("_m") || name.ends_with("_s");
}

llvm::StringRef unit_for(llvm::StringRef name) {
  if (name.ends_with("_db")) return "Db/SnrDb";
  if (name.ends_with("_hz")) return "Hz";
  if (name.ends_with("_m")) return "Meters";
  return "Seconds";
}

void report(const SourceManager& sm, SourceLocation loc,
            llvm::StringRef check, const std::string& message) {
  ++g_findings;
  llvm::outs() << sm.getFilename(loc) << ":"
               << sm.getSpellingLineNumber(loc) << ": [" << check << "] "
               << message << "\n";
}

/// unit-suffix-double-param: raw double parameters with unit-suffixed names
/// declared in a header of the main file set.
class UnitParamCallback : public MatchFinder::MatchCallback {
 public:
  void run(const MatchFinder::MatchResult& result) override {
    const auto* parm = result.Nodes.getNodeAs<ParmVarDecl>("parm");
    const SourceManager& sm = *result.SourceManager;
    const SourceLocation loc = parm->getLocation();
    if (!sm.isInMainFile(loc)) return;
    if (!sm.getFilename(loc).ends_with(".hpp")) return;
    const llvm::StringRef name = parm->getName();
    if (!has_unit_suffix(name)) return;
    report(sm, loc, "unit-suffix-double-param",
           ("parameter '" + name + "' is a raw double carrying a unit "
            "suffix; take common::" + unit_for(name) +
            " (see common/units.hpp) so callers cannot pass the wrong "
            "domain").str());
  }
};

/// rng-parallel-capture: member draw calls on lambda-captured Rngs inside
/// parallel_for / parallel_reduce arguments.
class RngCaptureCallback : public MatchFinder::MatchCallback {
 public:
  void run(const MatchFinder::MatchResult& result) override {
    const auto* lambda = result.Nodes.getNodeAs<LambdaExpr>("lambda");
    const auto* draw = result.Nodes.getNodeAs<CXXMemberCallExpr>("draw");
    const auto* object = result.Nodes.getNodeAs<DeclRefExpr>("object");
    const SourceManager& sm = *result.SourceManager;
    const auto* var = dyn_cast<VarDecl>(object->getDecl());
    if (var == nullptr) return;
    // Drawing from a body-local (derived via .child) or a parameter of the
    // lambda itself is the sanctioned pattern.
    const DeclContext* ctx = var->getDeclContext();
    const CXXMethodDecl* op = lambda->getCallOperator();
    for (; ctx != nullptr; ctx = ctx->getParent()) {
      if (ctx == op) return;  // declared inside the lambda
    }
    const std::string name = var->getNameAsString();
    const std::string method =
        draw->getMethodDecl()->getNameAsString();
    if (method == "child") return;  // deriving a stream is the fix itself
    report(sm, draw->getExprLoc(), "rng-parallel-capture",
           "'" + name + "." + method + "()' draws from a captured Rng "
           "inside a parallel body; derive a per-index stream with '" +
           name + ".child(i)' so draw order cannot depend on scheduling");
  }
};

}  // namespace

int main(int argc, const char** argv) {
  auto expected_parser =
      tooling::CommonOptionsParser::create(argc, argv, g_category);
  if (!expected_parser) {
    llvm::errs() << llvm::toString(expected_parser.takeError());
    return 2;
  }
  tooling::ClangTool tool(expected_parser->getCompilations(),
                          expected_parser->getSourcePathList());

  MatchFinder finder;
  UnitParamCallback unit_cb;
  RngCaptureCallback rng_cb;

  finder.addMatcher(
      parmVarDecl(hasType(asString("double"))).bind("parm"), &unit_cb);

  const auto draw_names = hasAnyName(
      "uniform", "uniform_int", "gaussian", "complex_gaussian", "coin",
      "random_bits", "gaussian_vector", "engine");
  finder.addMatcher(
      callExpr(callee(functionDecl(hasAnyName("parallel_for",
                                              "parallel_reduce"))),
               forEachDescendant(lambdaExpr(forEachDescendant(
                   cxxMemberCallExpr(
                       callee(cxxMethodDecl(draw_names)),
                       on(declRefExpr().bind("object")))
                       .bind("draw"))).bind("lambda"))),
      &rng_cb);

  const int status = tool.run(
      tooling::newFrontendActionFactory(&finder).get());
  if (status != 0) return status;
  return g_findings == 0 ? 0 : 1;
}
