#!/usr/bin/env python3
"""vab-tidy: domain-aware static analysis for the VAB tree.

Four check families, each encoding an invariant the regex linter
(tools/vab_lint.py) could only approximate:

  unit-suffix-double-param   Public headers must not declare raw `double`
                             function parameters whose names carry a unit
                             suffix (*_db, *_hz, *_m, *_s); those boundaries
                             take the strong types from common/units.hpp.
                             Grandfathered files live in allowlist.txt with a
                             rationale and tombstone date.
  rng-parallel-capture       An Rng captured into a parallel_for /
                             parallel_reduce body must only be used through
                             .child(...); direct draws make the draw order
                             depend on scheduling.
  unordered-iter-accumulate  Iterating a std::unordered_* container is only
                             flagged when the loop body accumulates or emits
                             output (the hash order would leak into results);
                             pure lookups and counting stay legal.
  layering                   The module DAG is enforced from the real
                             `#include` edges: a module may include only
                             lower-ranked modules (obs is an include-anywhere
                             sink), and no cycle may appear.

The tool is driven by the build's exported compile_commands.json (configure
with CMAKE_EXPORT_COMPILE_COMMANDS=ON, which cmake/StaticAnalysis.cmake sets
unconditionally): translation units listed there are analysed, plus every
header under the source roots. Without a build directory it falls back to
walking the tree, so the ctest gate works on a fresh checkout too.

A libTooling twin (vab_tidy.cpp) builds when a clang development install is
discovered; this Python engine is the portable gate and the twin must agree
with it on the fixture set.

Point exceptions use the same annotation idiom as vab_lint:

    code();  // vab-tidy: allow(rule-id) reason

Exit status: 0 when clean, 1 on findings, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field

CXX_EXTENSIONS = (".hpp", ".cpp")

CHECKS = [
    "unit-suffix-double-param",
    "rng-parallel-capture",
    "unordered-iter-accumulate",
    "layering",
]

#: Module ranks for the layering DAG. An `#include "mod/..."` edge from
#: module A to module B is legal iff A == B, B is a sink, or
#: rank(A) > rank(B). Ranks mirror DESIGN.md's layer diagram.
MODULE_RANKS = {
    "common": 0,
    "dsp": 1,
    "fault": 1,
    "piezo": 1,
    "vanatta": 1,
    "channel": 2,
    "phy": 2,
    "net": 3,
    "sim": 4,
    "core": 5,
}

#: Modules any layer (including common) may include, and which may include
#: nothing outside themselves: pure observability sinks.
SINK_MODULES = {"obs"}

UNIT_SUFFIX_RE = re.compile(r"_(?:db|hz|m|s)$")

DRAW_METHODS = (
    "uniform", "uniform_int", "gaussian", "complex_gaussian", "coin",
    "random_bits", "gaussian_vector", "engine",
)

ACCUMULATE_RE = re.compile(
    r"(?:\+=|\|=|\^=|<<|\bpush_back\s*\(|\bemplace_back\s*\(|"
    r"\bappend\s*\(|\binsert\s*\(|\bemplace\s*\()")

ALLOW_RE = re.compile(r"//\s*vab-tidy:\s*allow\(([a-z-]+)\)")
SKIP_FILE_RE = re.compile(r"//\s*vab-tidy:\s*skip-file")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.MULTILINE)


@dataclass
class Finding:
    path: str
    line: int
    check: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


def blank_comments_and_strings(text: str) -> str:
    """Replaces comment and string contents with spaces, preserving line
    structure, so token scans never fire inside prose. Annotation comments
    are consumed separately from the raw text before blanking."""
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
            elif ch == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
            elif ch == '"':
                state = "str"
                out.append('"')
                i += 1
            elif ch == "'":
                state = "chr"
                out.append("'")
                i += 1
            else:
                out.append(ch)
                i += 1
        elif state == "line":
            if ch == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block":
            if ch == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if ch == "\n" else " ")
                i += 1
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if ch == "\\":
                out.append("  ")
                i += 2
            elif ch == quote:
                state = "code"
                out.append(quote)
                i += 1
            else:
                out.append("\n" if ch == "\n" else " ")
                i += 1
    return "".join(out)


@dataclass
class SourceFile:
    path: str
    text: str
    code: str = field(init=False)
    skip: bool = field(init=False)
    allowed: dict[int, set[str]] = field(init=False)

    def __post_init__(self) -> None:
        self.skip = bool(SKIP_FILE_RE.search(self.text))
        self.code = blank_comments_and_strings(self.text)
        self.allowed = {}
        for lineno, raw in enumerate(self.text.splitlines(), start=1):
            for m in ALLOW_RE.finditer(raw):
                # An allow on its own line covers the next line as well.
                self.allowed.setdefault(lineno, set()).add(m.group(1))
                if raw.lstrip().startswith("//"):
                    self.allowed.setdefault(lineno + 1, set()).add(m.group(1))

    def is_header(self) -> bool:
        return self.path.endswith(".hpp")

    def is_allowed(self, line: int, check: str) -> bool:
        return check in self.allowed.get(line, set())

    def line_of(self, offset: int) -> int:
        return self.code.count("\n", 0, offset) + 1


def load_source(path: str) -> SourceFile:
    with open(path, encoding="utf-8") as fh:
        return SourceFile(path, fh.read())


def extract_balanced(text: str, open_idx: int, open_ch: str,
                     close_ch: str) -> int:
    """Index of the closer matching the opener at open_idx, or -1."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i
    return -1


# --- check: unit-suffix-double-param ----------------------------------------

DOUBLE_PARAM_RE = re.compile(r"\bdouble\s+(\w+)")


def check_unit_suffix_params(src: SourceFile,
                             grandfathered: bool) -> list[Finding]:
    """Flags `double name_db/_hz/_m/_s` in *parameter* position in headers.

    A declaration terminated by `;` or `}` before any `,`/`)` at its own
    nesting level is a field or local (raw storage stays legal: structs of
    plain numbers are the serialization/config layer); one terminated by
    `,` or `)` sits in a parameter list and must take a strong unit type.
    """
    if not src.is_header() or grandfathered:
        return []
    found = []
    for m in DOUBLE_PARAM_RE.finditer(src.code):
        name = m.group(1)
        if not UNIT_SUFFIX_RE.search(name):
            continue
        i, n = m.end(), len(src.code)
        depth = 0
        terminator = ""
        while i < n:
            ch = src.code[i]
            if ch in "([{<":
                depth += 1
            elif ch in ")]}>":
                if depth == 0:
                    terminator = ch
                    break
                depth -= 1
            elif depth == 0 and ch in ";,":
                terminator = ch
                break
            i += 1
        if terminator not in (",", ")"):
            continue  # field, local, or array declaration
        line = src.line_of(m.start())
        if src.is_allowed(line, "unit-suffix-double-param"):
            continue
        unit = {"db": "Db/SnrDb", "hz": "Hz", "m": "Meters",
                "s": "Seconds"}[UNIT_SUFFIX_RE.search(name).group(0)[1:]]
        found.append(Finding(
            src.path, line, "unit-suffix-double-param",
            f"parameter '{name}' is a raw double carrying a unit suffix; "
            f"take common::{unit} (see common/units.hpp) so callers cannot "
            "pass the wrong domain"))
    return found


# --- check: rng-parallel-capture --------------------------------------------

PARALLEL_CALL_RE = re.compile(r"\bparallel_(?:for|reduce)\s*(?:<[^;{}]*?>)?\s*\(")
LAMBDA_RE = re.compile(r"\[([^\]\n]*)\]\s*\(([^)]*)\)")
DRAW_RE = re.compile(
    r"\b(\w+)\s*(?:\.|->)\s*(" + "|".join(DRAW_METHODS) + r")\s*\(")
CHILD_LOCAL_RE = re.compile(
    r"\b(?:auto|Rng|common::Rng)\s*&?\s+(\w+)\s*=\s*[\w.\->:]+\.child\s*\(")


def check_rng_parallel_capture(src: SourceFile) -> list[Finding]:
    """Flags draws from a captured Rng inside parallel_for/parallel_reduce
    lambda bodies. Legal uses: `rng.child(i)` itself (deriving the per-index
    stream), draws from a lambda parameter, and draws from an Rng declared
    inside the body via `.child(...)`."""
    found = []
    for call in PARALLEL_CALL_RE.finditer(src.code):
        open_paren = src.code.index("(", call.end() - 1)
        close_paren = extract_balanced(src.code, open_paren, "(", ")")
        if close_paren < 0:
            continue
        args = src.code[open_paren:close_paren + 1]
        for lam in LAMBDA_RE.finditer(args):
            captures = lam.group(1)
            params = {p.split()[-1].lstrip("&*")
                      for p in lam.group(2).split(",") if p.strip()}
            body_open = args.find("{", lam.end())
            if body_open < 0:
                continue
            body_close = extract_balanced(args, body_open, "{", "}")
            if body_close < 0:
                continue
            body = args[body_open:body_close + 1]
            by_ref_default = captures.strip() in ("&", "=") or \
                captures.strip().startswith(("&,", "&,")) or \
                captures.strip() == "&"
            explicit = {c.strip().lstrip("&*")
                        for c in captures.split(",") if c.strip()}
            local = set(CHILD_LOCAL_RE.findall(body)) | params
            for draw in DRAW_RE.finditer(body):
                name, method = draw.group(1), draw.group(2)
                if name in local:
                    continue
                captured = by_ref_default or "&" in captures or \
                    name in explicit or "=" in captures
                if not captured:
                    continue
                # The sanctioned derivation is itself a method call.
                if body[draw.end() - 1] == "(" and method == "child":
                    continue
                line = src.line_of(open_paren + body_open + draw.start())
                if src.is_allowed(line, "rng-parallel-capture"):
                    continue
                found.append(Finding(
                    src.path, line, "rng-parallel-capture",
                    f"'{name}.{method}()' draws from a captured Rng inside a "
                    "parallel body; derive a per-index stream with "
                    f"'{name}.child(i)' so draw order cannot depend on "
                    "scheduling"))
    return found


# --- check: unordered-iter-accumulate ---------------------------------------

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}()]*?>\s*&?\s*(\w+)")
RANGE_FOR_RE = re.compile(
    r"\bfor\s*\(\s*(?:const\s+)?[\w:<>,&*\s\[\]]+?:\s*(\w+)\s*\)")
ITER_LOOP_RE = re.compile(r"=\s*(\w+)\s*\.\s*(?:begin|cbegin)\s*\(")


def check_unordered_iter(src: SourceFile) -> list[Finding]:
    """Flags iteration over std::unordered_* containers whose loop body
    accumulates or emits (the hash order reaches a result); bodies that only
    count or look up stay legal."""
    unordered_names = set(UNORDERED_DECL_RE.findall(src.code))
    if not unordered_names:
        return []
    found = []
    for pattern in (RANGE_FOR_RE, ITER_LOOP_RE):
        for m in pattern.finditer(src.code):
            name = m.group(1)
            if name not in unordered_names:
                continue
            scan = m.end()
            if pattern is ITER_LOOP_RE:
                # `it = c.begin()` sits inside a for/while header; the body
                # starts after the header's closing paren, not after the
                # init clause's `;`.
                header = None
                for f in re.finditer(r"\b(?:for|while)\s*\(",
                                     src.code[:m.start()]):
                    header = f
                if header is None:
                    continue
                header_close = extract_balanced(src.code, header.end() - 1,
                                                "(", ")")
                if header_close < m.start():
                    continue
                scan = header_close + 1
            body_open = src.code.find("{", scan)
            stmt_end = src.code.find(";", scan)
            if body_open < 0 or (0 <= stmt_end < body_open):
                body = src.code[scan:stmt_end + 1 if stmt_end >= 0
                                else len(src.code)]
            else:
                body_close = extract_balanced(src.code, body_open, "{", "}")
                if body_close < 0:
                    continue
                body = src.code[body_open:body_close + 1]
            if not ACCUMULATE_RE.search(body):
                continue
            line = src.line_of(m.start())
            if src.is_allowed(line, "unordered-iter-accumulate"):
                continue
            found.append(Finding(
                src.path, line, "unordered-iter-accumulate",
                f"iteration over unordered container '{name}' feeds an "
                "accumulation or output in hash order; sort the keys (or "
                "the results) before they reach any reduction or stream"))
    return found


# --- check: layering --------------------------------------------------------

def module_of(rel_path: str) -> str | None:
    parts = rel_path.replace("\\", "/").split("/")
    if len(parts) >= 2 and parts[0] == "src":
        return parts[1]
    if len(parts) >= 2:
        # Quoted include paths are rooted at src/ (e.g. "phy/modem.hpp"),
        # so the first segment names the module; unknown names surface as
        # findings rather than silently passing.
        return parts[0]
    return None


def check_layering(files: list[SourceFile], repo_root: str) -> list[Finding]:
    """Validates every cross-module include edge against MODULE_RANKS and
    rejects module-level cycles (a cycle can exist even when each individual
    edge would pass a weaker same-rank rule)."""
    found = []
    edges: dict[tuple[str, str], tuple[str, int]] = {}
    for src in files:
        rel = os.path.relpath(src.path, repo_root)
        mod = module_of(rel)
        if mod is None:
            continue
        # Includes are scanned in the raw text: comment/string blanking
        # (correct for the token checks) erases the include target.
        for m in INCLUDE_RE.finditer(src.text):
            target = module_of(m.group(1))
            if target is None or target == mod:
                continue
            line = src.text.count("\n", 0, m.start()) + 1
            edges.setdefault((mod, target), (src.path, line))
            if target in SINK_MODULES:
                continue
            if mod in SINK_MODULES:
                if src.is_allowed(line, "layering"):
                    continue
                found.append(Finding(
                    src.path, line, "layering",
                    f"sink module '{mod}' must not include '{target}': obs "
                    "is observable from every layer precisely because it "
                    "depends on none of them"))
                continue
            if mod not in MODULE_RANKS or target not in MODULE_RANKS:
                found.append(Finding(
                    src.path, line, "layering",
                    f"unknown module in edge '{mod}' -> '{target}'; add it "
                    "to MODULE_RANKS in tools/vab_tidy/vab_tidy.py"))
                continue
            if MODULE_RANKS[mod] <= MODULE_RANKS[target]:
                if src.is_allowed(line, "layering"):
                    continue
                found.append(Finding(
                    src.path, line, "layering",
                    f"downward include: '{mod}' (rank {MODULE_RANKS[mod]}) "
                    f"may not include '{target}' (rank "
                    f"{MODULE_RANKS[target]}); dependencies must point "
                    "strictly down the layer diagram"))
    # Cycle detection over the observed module graph.
    graph: dict[str, set[str]] = {}
    for (a, b), _ in edges.items():
        graph.setdefault(a, set()).add(b)
    state: dict[str, int] = {}
    stack: list[str] = []

    def visit(node: str) -> list[str] | None:
        state[node] = 1
        stack.append(node)
        for nxt in sorted(graph.get(node, ())):
            if state.get(nxt, 0) == 1:
                return stack[stack.index(nxt):] + [nxt]
            if state.get(nxt, 0) == 0:
                cycle = visit(nxt)
                if cycle:
                    return cycle
        stack.pop()
        state[node] = 2
        return None

    for node in sorted(graph):
        if state.get(node, 0) == 0:
            cycle = visit(node)
            if cycle:
                a, b = cycle[0], cycle[1]
                path, line = edges[(a, b)]
                found.append(Finding(
                    path, line, "layering",
                    "module cycle detected: " + " -> ".join(cycle)))
                break
    return found


# --- driver -----------------------------------------------------------------

def load_allowlist(path: str, repo_root: str) -> dict[str, str]:
    """allowlist.txt: `<relative-header-path> :: <reason>` per line. The
    listed headers are exempt from unit-suffix-double-param only."""
    grandfathered: dict[str, str] = {}
    if not os.path.exists(path):
        return grandfathered
    with open(path, encoding="utf-8") as fh:
        for raw in fh:
            raw = raw.strip()
            if not raw or raw.startswith("#"):
                continue
            rel, _, reason = raw.partition("::")
            grandfathered[os.path.normpath(
                os.path.join(repo_root, rel.strip()))] = reason.strip()
    return grandfathered


def collect_from_compile_commands(build_dir: str) -> list[str] | None:
    db = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db):
        return None
    with open(db, encoding="utf-8") as fh:
        entries = json.load(fh)
    files = []
    for entry in entries:
        path = entry["file"]
        if not os.path.isabs(path):
            path = os.path.normpath(os.path.join(entry["directory"], path))
        files.append(path)
    return sorted(set(files))


def collect_sources(roots: list[str]) -> list[str]:
    out = []
    for root in roots:
        if os.path.isfile(root):
            out.append(root)
            continue
        for dirpath, _, names in os.walk(root):
            for name in sorted(names):
                if name.endswith(CXX_EXTENSIONS):
                    out.append(os.path.join(dirpath, name))
    return sorted(set(out))


def run(paths: list[str], repo_root: str, build_dir: str | None,
        checks: list[str], allowlist_path: str) -> list[Finding]:
    grandfathered = load_allowlist(allowlist_path, repo_root)
    files = collect_sources(paths)
    if build_dir:
        tus = collect_from_compile_commands(build_dir)
        if tus:
            in_roots = {os.path.normpath(f) for f in files}
            files = sorted(in_roots |
                           {t for t in tus
                            if os.path.normpath(t) in in_roots})
    sources = []
    for path in files:
        src = load_source(path)
        if not src.skip:
            sources.append(src)
    findings: list[Finding] = []
    for src in sources:
        norm = os.path.normpath(src.path)
        if "unit-suffix-double-param" in checks:
            findings.extend(
                check_unit_suffix_params(src, norm in grandfathered))
        if "rng-parallel-capture" in checks:
            findings.extend(check_rng_parallel_capture(src))
        if "unordered-iter-accumulate" in checks:
            findings.extend(check_unordered_iter(src))
    if "layering" in checks:
        findings.extend(check_layering(sources, repo_root))
    findings.sort(key=lambda f: (f.path, f.line, f.check))
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to analyse (default: src/)")
    parser.add_argument("--build-dir", default=None,
                        help="build dir with compile_commands.json")
    parser.add_argument("--repo-root", default=None,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--check", action="append", dest="checks",
                        choices=CHECKS, default=None,
                        help="run only the named check (repeatable)")
    parser.add_argument("--allowlist", default=None,
                        help="override the unit-suffix allowlist file")
    parser.add_argument("--list-checks", action="store_true")
    args = parser.parse_args()

    if args.list_checks:
        for check in CHECKS:
            print(check)
        return 0

    here = os.path.dirname(os.path.abspath(__file__))
    repo_root = args.repo_root or os.path.dirname(os.path.dirname(here))
    paths = args.paths or [os.path.join(repo_root, "src")]
    build_dir = args.build_dir
    if build_dir is None:
        default_build = os.path.join(repo_root, "build")
        build_dir = default_build if os.path.isdir(default_build) else None
    allowlist = args.allowlist or os.path.join(here, "allowlist.txt")

    findings = run(paths, repo_root, build_dir, args.checks or CHECKS,
                   allowlist)
    for finding in findings:
        print(finding.format())
    if findings:
        print(f"vab-tidy: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
