// Clean counterpart of unordered_accumulate.cpp: lookups, counting, and
// sorted-before-emit iteration stay legal.
#include <algorithm>
#include <cstddef>
#include <unordered_map>
#include <vector>

namespace fixture {

double lookup(const std::unordered_map<int, double>& cache, int key) {
  const auto it = cache.find(key);
  return it == cache.end() ? 0.0 : it->second;
}

std::size_t count_positive(const std::unordered_map<int, double>& weights) {
  std::size_t n = 0;
  for (const auto& [key, w] : weights)
    if (w > 0.0) ++n;  // order-independent: counting only
  return n;
}

std::vector<int> sorted_keys(const std::unordered_map<int, double>& weights) {
  std::vector<int> keys;
  keys.reserve(weights.size());
  // vab-tidy: allow(unordered-iter-accumulate) keys are sorted before use
  for (const auto& [key, w] : weights) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace fixture
