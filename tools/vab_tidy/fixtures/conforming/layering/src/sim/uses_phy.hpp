// sim (rank 4) including phy (rank 2) and obs (sink): both legal.
#pragma once
#include "obs/obs.hpp"
#include "phy/modem.hpp"
