// Conforming: unordered containers are fine for lookup; anything that
// *iterates* first establishes a deterministic order, or carries an
// explicit annotation where order provably cannot escape.
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace vab::fixture {

double rssi_of(const std::unordered_map<std::uint8_t, double>& by_node,
               std::uint8_t node) {
  const auto it = by_node.find(node);  // point lookup: order never observed
  return it == by_node.end() ? 0.0 : it->second;
}

std::vector<std::uint8_t> sorted_nodes(
    const std::unordered_map<std::uint8_t, double>& by_node) {
  std::vector<std::uint8_t> keys;
  keys.reserve(by_node.size());
  // vab-tidy: allow(unordered-iter-accumulate) order is discarded by the sort below
  for (const auto& [node, rssi] : by_node) keys.push_back(node);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace vab::fixture
