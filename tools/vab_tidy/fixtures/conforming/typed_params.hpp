// Clean counterpart of unit_params.hpp: strong-typed parameters, raw fields
// and locals, and array/template contexts that must never be mistaken for
// parameters.
#pragma once

#include <array>

namespace fixture {

struct Db {
  double v;
};
struct Meters {
  double v;
};

struct Config {
  double carrier_hz = 18500.0;
  double range_m = 100.0;
  double window_s = 0.25;
  std::array<double, 3> taps{};
};

Db absorption(Meters range, double frequency);  // typed boundary
void settle(double dwell, double pause);        // no unit suffix

inline double helper(Config cfg) {
  double level_db = 3.0;
  double span_m[2] = {0.0, 1.0};
  return level_db + span_m[0] + cfg.range_m;
}

}  // namespace fixture
