// Clean counterpart of rng_capture.cpp: every parallel body derives its own
// per-index stream (or passes the captured Rng straight to child()).
#include <cstddef>

namespace fixture {

void clean_fill(const Rng& rng, double* out, std::size_t n) {
  parallel_for(std::size_t{0}, n, [&](std::size_t i) {
    Rng local = rng.child(i);
    out[i] = local.uniform();
  });
}

void clean_inline_child(const Rng& rng, double* out, std::size_t n) {
  parallel_for(std::size_t{0}, n, [&](std::size_t i) {
    out[i] = trial(rng.child(i));
  });
}

double clean_param(std::size_t n) {
  return parallel_reduce_seeded(
      std::size_t{0}, n, 0.0,
      [](std::size_t, Rng& worker) { return worker.uniform(); },
      [](double a, double b) { return a + b; });
}

}  // namespace fixture
