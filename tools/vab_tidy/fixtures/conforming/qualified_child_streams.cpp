// Conforming: namespace-qualified parallel calls with per-index child
// streams; the draws are a pure function of the trial index.
#include <cstddef>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace vab::fixture {

using common::Rng;

std::vector<double> fades(const Rng& rng, std::size_t trials) {
  std::vector<double> out(trials);
  common::parallel_for(0, trials, [&](std::size_t t) {
    Rng trial_rng = rng.child(t);
    out[t] = trial_rng.gaussian(0.0, 4.0);
  });
  return out;
}

double total_noise(const Rng& rng, std::size_t trials) {
  return common::parallel_reduce(
      0, trials, 0.0,
      [&](std::size_t t) {
        auto draw = rng.child(t);
        return draw.uniform();
      },
      [](double a, double b) { return a + b; });
}

}  // namespace vab::fixture
