// expect: unordered-iter-accumulate:1
#include <cstddef>
#include <unordered_map>

namespace vab::fixture {

double mean_rung_delivery(
    const std::unordered_map<std::size_t, double>& delivery_by_rung) {
  double sum = 0.0;
  // Hash-order fold over per-rung MCS stats: float addition is not
  // associative, so the ladder summary can differ between runs/platforms.
  for (const auto& [rung, delivery] : delivery_by_rung) sum += delivery;
  return delivery_by_rung.empty()
             ? 0.0
             : sum / static_cast<double>(delivery_by_rung.size());
}

}  // namespace vab::fixture
