// expect: unordered-iter-accumulate:2
//
// Hash-order iteration is flagged only when the loop body accumulates or
// emits: the order would leak into a result.
#include <ostream>
#include <unordered_map>
#include <vector>

namespace fixture {

double broken_total(const std::unordered_map<int, double>& weights) {
  double total = 0.0;
  for (const auto& [key, w] : weights) total += w;  // finding: reduction
  return total;
}

void broken_dump(const std::unordered_map<int, double>& weights,
                 std::ostream& os) {
  for (const auto& kv : weights) os << kv.first << "\n";  // finding: output
}

}  // namespace fixture
