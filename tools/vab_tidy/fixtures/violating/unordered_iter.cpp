// expect: unordered-iter-accumulate:2
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace vab::fixture {

double total_rssi(const std::unordered_map<std::uint8_t, double>& by_node) {
  double sum = 0.0;
  // Hash-order fold: float addition is not associative, so the result can
  // differ between runs/platforms.
  for (const auto& [node, rssi] : by_node) sum += rssi;
  return sum;
}

std::vector<std::string> names(std::unordered_set<std::string> pool) {
  std::vector<std::string> out;
  for (auto it = pool.begin(); it != pool.end(); ++it) out.push_back(*it);
  return out;
}

}  // namespace vab::fixture
