// expect: rng-parallel-capture:2
//
// Drawing from a captured Rng inside a parallel body makes the draw order
// depend on scheduling; each worker must derive its own child stream.
#include <cstddef>

namespace fixture {

void broken_fill(Rng& rng, double* out, std::size_t n) {
  parallel_for(std::size_t{0}, n, [&](std::size_t i) {
    out[i] = rng.uniform();  // finding: captured draw
  });
}

double broken_sum(Rng& rng, std::size_t n) {
  return parallel_reduce(
      std::size_t{0}, n, 0.0,
      [&](std::size_t) { return rng.gaussian(0.0, 1.0); },  // finding
      [](double a, double b) { return a + b; });
}

}  // namespace fixture
