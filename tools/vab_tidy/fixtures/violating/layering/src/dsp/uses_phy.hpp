// expect: layering:1
// dsp (rank 1) reaching up into phy (rank 2): a downward include.
#pragma once
#include "phy/modem.hpp"
