// expect: layering:1
// obs is an include-anywhere sink; it may not depend on any layer.
#pragma once
#include "common/types.hpp"
