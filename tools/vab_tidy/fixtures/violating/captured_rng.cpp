// expect: rng-parallel-capture:2
#include <cstddef>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace vab::fixture {

using common::Rng;

// The PR-1 hazard class: every trial draws from the same captured stream,
// so the values each trial sees depend on which thread got there first.
std::vector<double> fades(Rng& rng, std::size_t trials) {
  std::vector<double> out(trials);
  common::parallel_for(0, trials, [&](std::size_t t) {
    out[t] = rng.gaussian(0.0, 4.0);
  });
  return out;
}

double total_noise(Rng& rng, std::size_t trials) {
  return common::parallel_reduce(
      0, trials, 0.0,
      [&](std::size_t) { return rng.uniform(); },
      [](double a, double b) { return a + b; });
}

}  // namespace vab::fixture
