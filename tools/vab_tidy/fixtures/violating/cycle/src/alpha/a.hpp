// expect: layering:1  (unknown module; the cycle needs both files, see
// the LayeringModel.test_cycle_detected whole-tree run)
#pragma once
#include "beta/b.hpp"
