// expect: layering:1  (unknown module)
#pragma once
#include "alpha/a.hpp"
