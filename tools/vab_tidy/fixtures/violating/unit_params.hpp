// expect: unit-suffix-double-param:3
//
// Raw unit-suffixed double parameters in a header: each must take the
// matching strong type. Fields, locals, and annotated exceptions stay legal.
#pragma once

namespace fixture {

struct Config {
  double carrier_hz = 18500.0;  // field: raw storage is the config layer
  double range_m = 100.0;       // field
};

double absorption(double range_m, double f_hz);   // 2 findings
void settle(double dwell_s);                      // 1 finding

// vab-tidy: allow(unit-suffix-double-param) boundary shim kept raw for ABI
double legacy_gain(double level_db);

inline double helper() {
  double local_db = 3.0;  // local: terminated by ';', never a parameter
  return local_db;
}

}  // namespace fixture
