#!/usr/bin/env python3
"""Unit tests for the vab-tidy check engine, run as the VabTidy.SelfTest
ctest.

Every fixture under tools/vab_tidy/fixtures/violating/ declares the findings
it must produce with `// expect: <check-id>:<count>` header comments; every
file under conforming/ must produce none. On top of the counts, one exact
diagnostic string per check family is pinned so message regressions (wrong
line, wrong column anchoring, reworded advice) fail here before the
tree-wide gate.
"""

from __future__ import annotations

import os
import re
import sys
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(HERE, "vab_tidy"))

import vab_tidy  # noqa: E402

FIXTURES = os.path.join(HERE, "vab_tidy", "fixtures")
EXPECT_RE = re.compile(r"//\s*expect:\s*([a-z-]+):(\d+)")


def fixture_files(kind: str) -> list[str]:
    out = []
    for dirpath, _, names in os.walk(os.path.join(FIXTURES, kind)):
        for name in sorted(names):
            if name.endswith(vab_tidy.CXX_EXTENSIONS):
                out.append(os.path.join(dirpath, name))
    return sorted(out)


def expected_findings(path: str) -> dict[str, int]:
    with open(path, encoding="utf-8") as fh:
        head = fh.read(2048)
    return {check: int(count) for check, count in EXPECT_RE.findall(head)}


def lint_one(path: str, kind: str) -> list[vab_tidy.Finding]:
    """Runs all checks the way the CLI would, rooted at the fixture's own
    mini-tree so the layering check sees `src/<module>/...` paths."""
    root = os.path.join(FIXTURES, kind)
    marker = os.sep + "src" + os.sep
    if marker in path:
        root = path[:path.index(marker)]
    return vab_tidy.run([path], repo_root=root, build_dir=None,
                        checks=vab_tidy.CHECKS,
                        allowlist_path=os.devnull)


def count_by_check(findings: list[vab_tidy.Finding]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.check] = counts.get(finding.check, 0) + 1
    return counts


class ViolatingFixtures(unittest.TestCase):
    def test_every_fixture_detected_exactly(self):
        checked = 0
        for path in fixture_files("violating"):
            expected = expected_findings(path)
            self.assertTrue(expected, f"{path} lacks an expect header")
            with self.subTest(fixture=os.path.relpath(path, FIXTURES)):
                actual = count_by_check(lint_one(path, "violating"))
                self.assertEqual(actual, expected)
            checked += 1
        self.assertGreaterEqual(checked, 6, "violating fixture set shrank")

    def test_every_check_has_a_violating_fixture(self):
        covered = set()
        for path in fixture_files("violating"):
            covered.update(expected_findings(path))
        self.assertEqual(covered, set(vab_tidy.CHECKS),
                         "each check needs a fixture proving it still fires")


class ExactDiagnostics(unittest.TestCase):
    """One pinned diagnostic per family: the full path:line/message contract
    the libTooling twin must reproduce."""

    def _findings(self, rel: str) -> list[str]:
        path = os.path.join(FIXTURES, "violating", rel)
        return [f.format() for f in lint_one(path, "violating")]

    def test_unit_param_diagnostic(self):
        path = os.path.join(FIXTURES, "violating", "unit_params.hpp")
        self.assertIn(
            f"{path}:14: [unit-suffix-double-param] parameter 'range_m' is "
            "a raw double carrying a unit suffix; take common::Meters (see "
            "common/units.hpp) so callers cannot pass the wrong domain",
            self._findings("unit_params.hpp"))

    def test_rng_capture_diagnostic(self):
        path = os.path.join(FIXTURES, "violating", "rng_capture.cpp")
        self.assertIn(
            f"{path}:11: [rng-parallel-capture] 'rng.uniform()' draws from "
            "a captured Rng inside a parallel body; derive a per-index "
            "stream with 'rng.child(i)' so draw order cannot depend on "
            "scheduling",
            self._findings("rng_capture.cpp"))

    def test_unordered_diagnostic(self):
        path = os.path.join(FIXTURES, "violating", "unordered_accumulate.cpp")
        self.assertIn(
            f"{path}:13: [unordered-iter-accumulate] iteration over "
            "unordered container 'weights' feeds an accumulation or output "
            "in hash order; sort the keys (or the results) before they "
            "reach any reduction or stream",
            self._findings("unordered_accumulate.cpp"))

    def test_layering_diagnostic(self):
        path = os.path.join(FIXTURES, "violating", "layering", "src", "dsp",
                            "uses_phy.hpp")
        self.assertIn(
            f"{path}:4: [layering] downward include: 'dsp' (rank 1) may not "
            "include 'phy' (rank 2); dependencies must point strictly down "
            "the layer diagram",
            [f.format() for f in lint_one(path, "violating")])


class ConformingFixtures(unittest.TestCase):
    def test_no_false_positives(self):
        for path in fixture_files("conforming"):
            with self.subTest(fixture=os.path.relpath(path, FIXTURES)):
                self.assertEqual(
                    [f.format() for f in lint_one(path, "conforming")], [])


class LayeringModel(unittest.TestCase):
    def test_rank_table_matches_design(self):
        self.assertEqual(vab_tidy.MODULE_RANKS["common"], 0)
        self.assertEqual(vab_tidy.SINK_MODULES, {"obs"})
        for mod in ("dsp", "fault", "piezo", "vanatta"):
            self.assertEqual(vab_tidy.MODULE_RANKS[mod], 1)
        self.assertLess(vab_tidy.MODULE_RANKS["phy"],
                        vab_tidy.MODULE_RANKS["net"])
        self.assertLess(vab_tidy.MODULE_RANKS["sim"],
                        vab_tidy.MODULE_RANKS["core"])

    def test_cycle_detected(self):
        root = os.path.join(FIXTURES, "violating", "cycle")
        findings = vab_tidy.run([os.path.join(root, "src")], repo_root=root,
                                build_dir=None, checks=["layering"],
                                allowlist_path=os.devnull)
        formatted = [f.format() for f in findings]
        self.assertTrue(any("module cycle detected" in f for f in formatted),
                        formatted)


class Allowlist(unittest.TestCase):
    def test_grandfathered_header_skips_unit_check_only(self):
        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            hdr = os.path.join(tmp, "legacy.hpp")
            with open(hdr, "w", encoding="utf-8") as fh:
                fh.write("void f(double gain_db);\n")
            allow = os.path.join(tmp, "allow.txt")
            with open(allow, "w", encoding="utf-8") as fh:
                fh.write("legacy.hpp :: grandfathered for the test\n")
            self.assertEqual(
                vab_tidy.run([hdr], repo_root=tmp, build_dir=None,
                             checks=vab_tidy.CHECKS, allowlist_path=allow),
                [])
            findings = vab_tidy.run([hdr], repo_root=tmp, build_dir=None,
                                    checks=vab_tidy.CHECKS,
                                    allowlist_path=os.devnull)
            self.assertEqual([f.check for f in findings],
                             ["unit-suffix-double-param"])

    def test_repo_allowlist_entries_still_exist(self):
        """Every grandfathered path must still be a real header: stale
        entries hide nothing but rot the debt ledger."""
        repo = os.path.dirname(HERE)
        allowlist = vab_tidy.load_allowlist(
            os.path.join(HERE, "vab_tidy", "allowlist.txt"), repo)
        self.assertTrue(allowlist)
        for path, reason in allowlist.items():
            self.assertTrue(os.path.exists(path), f"stale allowlist: {path}")
            self.assertTrue(reason, f"allowlist entry needs a reason: {path}")


if __name__ == "__main__":
    unittest.main(verbosity=2)
