// expect: no-wallclock:3
#include <chrono>

namespace vab::fixture {

bool poll_expired(double budget_s) {
  // Real-time timeout inside protocol logic: outcomes now depend on host
  // speed. Timeouts must run on simulated time.
  const auto start = std::chrono::steady_clock::now();
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - start).count() > budget_s;
}

}  // namespace vab::fixture
