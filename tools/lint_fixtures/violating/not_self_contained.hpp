// expect-self-contained-failure
// Uses std::vector but never includes <vector>: compiles only when the
// includer happened to pull it in first.
#pragma once

#include <cstddef>

namespace vab::fixture {

inline std::vector<double> zeros(std::size_t n) {
  return std::vector<double>(n, 0.0);
}

}  // namespace vab::fixture
