// expect: own-header-first:1
#include <cmath>

#include "wrong_first_include.hpp"

namespace vab::fixture {

double scale(double x) { return std::sqrt(x); }

}  // namespace vab::fixture
