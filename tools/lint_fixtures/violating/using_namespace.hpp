// expect: no-using-namespace:1
#pragma once

#include <vector>

using namespace std;  // leaks into every includer

namespace vab::fixture {

inline vector<double> zeros(size_t n) { return vector<double>(n, 0.0); }

}  // namespace vab::fixture
