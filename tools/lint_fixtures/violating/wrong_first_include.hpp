#pragma once

namespace vab::fixture {

double scale(double x);

}  // namespace vab::fixture
