// expect: no-pointer-key-order:2
#include <map>
#include <set>

namespace vab::fixture {

struct Node {
  int id = 0;
};

std::map<Node*, double> rssi_by_node;      // address order varies per run
std::set<const Node*> seen;

}  // namespace vab::fixture
