// expect: pragma-once:1
// A header without #pragma once: double inclusion redefines the struct.

namespace vab::fixture {

struct Sample {
  double value = 0.0;
};

}  // namespace vab::fixture
