// expect: simd-intrinsics-confined:6
// A decimator "optimization" reaching for raw intrinsics outside
// src/dsp/simd/. ISA-specific code must live behind the runtime dispatch
// layer so the scalar-vs-SIMD bit-identity suite covers every instruction it
// can emit; nothing gates this loop against the VAB_SIMD=scalar build.
#include <immintrin.h>

#include <cstddef>

namespace vab::dsp {

double sum_avx2(const double* p, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) acc = _mm256_add_pd(acc, _mm256_loadu_pd(p + i));
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  double s = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) s += p[i];
  return s;
}

#if defined(__aarch64__)
double pair_sum_neon(const double* p) {
  const float64x2_t v = vld1q_f64(p);
  return vgetq_lane_f64(v, 0) + vgetq_lane_f64(v, 1);
}
#endif

}  // namespace vab::dsp
