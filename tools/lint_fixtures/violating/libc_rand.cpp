// expect: no-libc-rand:2
#include <cstdlib>

namespace vab::fixture {

int noisy_sample() {
  std::srand(42);             // hidden global state
  return rand() % 100;        // not seedable per trial
}

}  // namespace vab::fixture
