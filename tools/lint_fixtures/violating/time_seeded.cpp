// expect: no-time-seeded-rng:2
// expect: no-wallclock:2
#include <chrono>
#include <ctime>
#include <random>

namespace vab::fixture {

std::mt19937_64 make_engine() {
  return std::mt19937_64(std::chrono::steady_clock::now().time_since_epoch().count());
}

unsigned legacy_seed() {
  std::minstd_rand gen(static_cast<unsigned>(time(nullptr)));
  return gen();
}

}  // namespace vab::fixture
