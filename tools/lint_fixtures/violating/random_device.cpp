// expect: no-random-device:1
#include <random>

namespace vab::fixture {

double entropy_sample() {
  std::random_device rd;
  std::mt19937_64 engine(rd());
  return static_cast<double>(engine()) / 1e19;
}

}  // namespace vab::fixture
