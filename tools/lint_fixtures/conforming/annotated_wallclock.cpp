// Conforming: a deliberate wall-clock read, annotated with the rule id and
// the reason the determinism contract is not at risk.
#include <chrono>

namespace vab::fixture {

double watchdog_elapsed_s(
    std::chrono::steady_clock::time_point start) {  // vab-lint: allow(no-wallclock) watchdog only logs, never feeds results
  // vab-lint: allow(no-wallclock) watchdog only logs, never feeds results
  const auto now = std::chrono::steady_clock::now();
  // vab-lint: allow(no-wallclock) duration math on already-sampled points
  return std::chrono::duration<double>(now - start).count();
}

}  // namespace vab::fixture
