// Conforming: the fleet-replicate idiom. Each parallel body derives its
// run stream from the caller's Rng via child(run_index), so every replicate
// is a pure function of (config, seed, index) — the property the fleet
// bench's 1/2/8-thread digest cross-check relies on.
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace vab::fixture {

using common::Rng;

std::vector<std::uint64_t> replicate_digests(const Rng& rng,
                                             std::size_t n_runs) {
  std::vector<std::uint64_t> digests(n_runs);
  common::parallel_for(0, n_runs, [&](std::size_t k) {
    const Rng run_rng = rng.child(k);
    Rng window_rng = run_rng.child(0);
    digests[k] = static_cast<std::uint64_t>(window_rng.coin(0.5));
  });
  return digests;
}

}  // namespace vab::fixture
