// A self-contained header: #pragma once first, includes everything it uses.
#pragma once

#include <cstddef>
#include <vector>

namespace vab::fixture {

std::vector<double> ramp(std::size_t n);

}  // namespace vab::fixture
