// Conforming: the slotted-MAC idiom. Each window's acquisition round draws
// from a dedicated child stream (the parent never advances), and per-rung
// residency lives in an ordered std::map so every fold is deterministic.
#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace vab::fixture {

using common::Rng;

inline constexpr std::uint64_t kStreamSlotted = 2;

std::vector<std::size_t> draw_slots(const Rng& window_rng, std::size_t contenders,
                                    std::size_t frame) {
  Rng slot_rng = window_rng.child(kStreamSlotted);
  std::vector<std::size_t> slots(contenders);
  for (std::size_t i = 0; i < contenders; ++i)
    slots[i] = static_cast<std::size_t>(
        slot_rng.uniform_int(0, static_cast<std::int64_t>(frame) - 1));
  return slots;
}

std::size_t residency_total(const std::map<std::size_t, std::size_t>& rung_polls) {
  std::size_t total = 0;
  // Ordered iteration: the fold visits rungs in index order on every run.
  for (const auto& [rung, polls] : rung_polls) total += polls;
  return total;
}

std::vector<std::size_t> replicate_totals(const Rng& rng, std::size_t n_runs,
                                          std::size_t contenders) {
  std::vector<std::size_t> out(n_runs);
  common::parallel_for(0, n_runs, [&](std::size_t k) {
    // Per-replicate child stream: results invariant to the thread count.
    Rng run_rng = rng.child(k);
    out[k] = draw_slots(run_rng, contenders, 16).size();
  });
  return out;
}

}  // namespace vab::fixture
