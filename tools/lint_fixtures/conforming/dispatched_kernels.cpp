// The conforming counterpart to raw_intrinsics.cpp: hot loops call the
// runtime-dispatched dsp::simd entry points, which pick AVX2/NEON (or the
// width-1 scalar twin) internally — _mm256_add_pd and vaddq_f64 stay
// confined to src/dsp/simd/, where the bit-identity gate covers them. An
// intrinsic named in a comment, like those two, must never trip the rule.
#include "dsp/simd/simd.hpp"

#include <cstddef>

namespace vab::dsp {

void decimate_block(const double* taps, std::size_t n_taps, const cplx* x,
                    std::size_t i_first, std::size_t m, cplx* out,
                    std::size_t n_out) {
  simd::fir_decimate(taps, n_taps, x, i_first, m, out, n_out);
}

void correlate_block(const cplx* sig, const cplx* ref, std::size_t ref_len,
                     cplx* out, std::size_t n_out) {
  simd::ccorr_dot(sig, ref, ref_len, out, n_out);
}

const char* report_isa() {
  // Reading the active ISA for telemetry is fine; only raw instruction-level
  // code is confined.
  return simd::isa_name(simd::active_isa());
}

}  // namespace vab::dsp
