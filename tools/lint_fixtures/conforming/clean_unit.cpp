#include "clean_unit.hpp"

namespace vab::fixture {

std::vector<double> ramp(std::size_t n) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<double>(i);
  return out;
}

}  // namespace vab::fixture
