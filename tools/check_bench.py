#!/usr/bin/env python3
"""Guard the DSP hot-path benchmarks against performance regressions.

Compares a google-benchmark JSON run of bench/micro_dsp against the committed
baseline (bench/baselines/micro_dsp.json). Absolute nanoseconds are useless
across machines, so every watched kernel is normalized by a calibration
benchmark measured in the same run — a scalar streaming-FIR loop whose code
this repo treats as frozen. A kernel fails if its normalized time grew by
more than the threshold (default 30%) relative to the baseline's normalized
time.

Usage:
  check_bench.py results.json                    # compare against baseline
  check_bench.py results.json --update           # re-pin the baseline
  check_bench.py results.json --threshold 0.5    # custom tolerance

Exit codes: 0 ok, 1 regression or malformed input.
"""

import argparse
import json
import re
import sys
from pathlib import Path

# Kernels the perf PRs promised: correlation and FFT paths (plus the decimated
# FIR that replaced full-rate filtering on the demod chain), the mixer, the
# end-to-end waveform trial, and the fleet simulator's hot path (event queue,
# spatial grid, budget-fidelity run). This also covers the *Scalar twins of the
# vectorized kernels, so the reference path is regression-gated alongside the
# dispatched one.
WATCH_PATTERN = re.compile(r"Correlate|Fft|FirDecimate|Downconvert|WaveformTrial|Fleet")

# Machine-speed proxy: plain streaming FIR, untouched scalar code. Not in the
# watchlist, so a genuine FFT/correlation regression cannot hide in it.
CALIBRATION = "BM_FirFilterComplex/255"

SCHEMA = "vab-bench-baseline-v1"


def load_run(path):
    """Returns {name: real_time_ns} from a google-benchmark JSON file."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        out[b["name"]] = float(b["real_time"])
    if not out:
        raise ValueError(f"{path}: no benchmark entries found")
    return out


def load_baseline(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"{path}: expected schema {SCHEMA!r}")
    return doc["benchmarks"]


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("results", help="google-benchmark JSON output of micro_dsp")
    ap.add_argument("--baseline",
                    default=str(Path(__file__).resolve().parent.parent /
                                "bench" / "baselines" / "micro_dsp.json"))
    ap.add_argument("--threshold", type=float, default=0.30,
                    help="allowed relative growth of normalized time (default 0.30)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from this run instead of comparing")
    args = ap.parse_args()

    try:
        current = load_run(args.results)
    except (OSError, ValueError, KeyError) as e:
        print(f"check_bench: cannot read results: {e}", file=sys.stderr)
        return 1

    if CALIBRATION not in current:
        print(f"check_bench: calibration benchmark {CALIBRATION} missing from run",
              file=sys.stderr)
        return 1

    if args.update:
        doc = {"schema": SCHEMA, "calibration": CALIBRATION,
               "benchmarks": {k: current[k] for k in sorted(current)}}
        with open(args.baseline, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print(f"check_bench: baseline re-pinned to {args.baseline}")
        return 0

    try:
        baseline = load_baseline(args.baseline)
    except (OSError, ValueError, KeyError) as e:
        print(f"check_bench: cannot read baseline: {e}", file=sys.stderr)
        return 1
    if CALIBRATION not in baseline:
        print(f"check_bench: calibration benchmark {CALIBRATION} missing from baseline",
              file=sys.stderr)
        return 1

    cal_cur = current[CALIBRATION]
    cal_base = baseline[CALIBRATION]
    failures = []
    print(f"{'benchmark':38s} {'base(norm)':>12s} {'now(norm)':>12s} {'delta':>8s}")
    for name in sorted(baseline):
        if not WATCH_PATTERN.search(name):
            continue
        if name not in current:
            failures.append(f"{name}: watched kernel missing from run")
            continue
        norm_base = baseline[name] / cal_base
        norm_cur = current[name] / cal_cur
        delta = norm_cur / norm_base - 1.0
        flag = " FAIL" if delta > args.threshold else ""
        print(f"{name:38s} {norm_base:12.4f} {norm_cur:12.4f} {delta:+7.1%}{flag}")
        if delta > args.threshold:
            failures.append(f"{name}: normalized time grew {delta:+.1%} "
                            f"(threshold {args.threshold:.0%})")

    if failures:
        print("\ncheck_bench: PERF REGRESSION", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("check_bench: all watched kernels within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
