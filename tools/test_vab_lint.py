#!/usr/bin/env python3
"""Unit tests for the vab_lint rule engine, run as the VabLint.SelfTest ctest.

Every fixture under tools/lint_fixtures/violating/ declares the findings it
must produce with `// expect: <rule-id>:<count>` header comments; every file
under conforming/ must produce none. A rule change that stops catching a
fixture (or starts flagging clean idioms) fails here before it reaches the
tree-wide gate.
"""

from __future__ import annotations

import os
import re
import shutil
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import vab_lint  # noqa: E402

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "lint_fixtures")
EXPECT_RE = re.compile(r"//\s*expect:\s*([a-z0-9-]+):(\d+)")


def fixture_files(kind: str) -> list[str]:
    root = os.path.join(FIXTURES, kind)
    return sorted(
        os.path.join(root, name) for name in os.listdir(root)
        if name.endswith(vab_lint.CXX_EXTENSIONS))


def expected_findings(path: str) -> dict[str, int]:
    with open(path, encoding="utf-8") as fh:
        head = fh.read(2048)
    return {rule: int(count) for rule, count in EXPECT_RE.findall(head)}


def count_by_rule(findings: list[vab_lint.Finding]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return counts


class ViolatingFixtures(unittest.TestCase):
    def test_every_fixture_detected_exactly(self):
        checked = 0
        for path in fixture_files("violating"):
            expected = expected_findings(path)
            if not expected:  # e.g. the self-containment fixture
                continue
            with self.subTest(fixture=os.path.basename(path)):
                actual = count_by_rule(vab_lint.lint_file(path))
                self.assertEqual(actual, expected)
            checked += 1
        self.assertGreaterEqual(checked, 8, "violating fixture set shrank")

    def test_every_rule_has_a_violating_fixture(self):
        covered = set()
        for path in fixture_files("violating"):
            covered.update(expected_findings(path))
        self.assertEqual(covered, set(vab_lint.RULE_IDS),
                         "each rule needs a fixture proving it still fires")


class ConformingFixtures(unittest.TestCase):
    def test_no_false_positives(self):
        for path in fixture_files("conforming"):
            with self.subTest(fixture=os.path.basename(path)):
                self.assertEqual(
                    [f.format() for f in vab_lint.lint_file(path)], [])


class Annotations(unittest.TestCase):
    def _lint_text(self, text: str, name: str = "snippet.cpp"):
        src = vab_lint.SourceFile(name, text)
        findings = []
        for rule in vab_lint.RULES:
            findings.extend(rule(src))
        return findings

    def test_allow_same_line(self):
        text = 'int f() { return rand(); }  // vab-lint: allow(no-libc-rand) test shim\n'
        self.assertEqual(self._lint_text(text), [])

    def test_allow_previous_line(self):
        text = ('// vab-lint: allow(no-libc-rand) test shim\n'
                'int f() { return rand(); }\n')
        self.assertEqual(self._lint_text(text), [])

    def test_allow_is_rule_specific(self):
        text = ('// vab-lint: allow(no-wallclock) wrong rule named\n'
                'int f() { return rand(); }\n')
        self.assertEqual(len(self._lint_text(text)), 1)

    def test_allow_does_not_leak_past_next_line(self):
        text = ('// vab-lint: allow(no-libc-rand) only covers the next line\n'
                'int f();\n'
                'int g() { return rand(); }\n')
        self.assertEqual(len(self._lint_text(text)), 1)

    def test_skip_file(self):
        text = '// vab-lint: skip-file\nint f() { return rand(); }\n'
        import tempfile
        with tempfile.NamedTemporaryFile("w", suffix=".cpp", delete=False) as fh:
            fh.write(text)
            path = fh.name
        try:
            self.assertEqual(vab_lint.lint_file(path), [])
        finally:
            os.unlink(path)


class CommentAndStringBlanking(unittest.TestCase):
    def test_comments_do_not_trip_rules(self):
        text = ('// rand() and std::random_device discussed in a comment\n'
                '/* for (auto& kv : themap) also here */\n'
                'int f();\n')
        self.assertEqual(Annotations._lint_text(self, text), [])

    def test_strings_do_not_trip_rules(self):
        text = 'const char* kMsg = "never call rand() here";\n'
        self.assertEqual(Annotations._lint_text(self, text), [])

    def test_line_structure_preserved(self):
        text = 'a /* multi\nline */ b\n"str\\"ing"\n'
        blanked = vab_lint.blank_comments_and_strings(text)
        self.assertEqual(blanked.count("\n"), text.count("\n"))


class RuleDetails(unittest.TestCase):
    # The rng-child-discipline and no-unordered-iter detail tests moved to
    # tools/test_vab_tidy.py when those rules were retired in favor of the
    # structural vab-tidy checks (rng-parallel-capture and
    # unordered-iter-accumulate); this guard keeps them retired.
    def test_retired_rules_stay_retired(self):
        for retired in ("no-unordered-iter", "rng-child-discipline"):
            self.assertNotIn(retired, vab_lint.RULE_IDS)

    def test_retired_hazards_covered_by_vab_tidy(self):
        sys.path.insert(0, os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "vab_tidy"))
        import vab_tidy  # noqa: E402
        self.assertIn("rng-parallel-capture", vab_tidy.CHECKS)
        self.assertIn("unordered-iter-accumulate", vab_tidy.CHECKS)


@unittest.skipIf(shutil.which(os.environ.get("CXX", "g++")) is None,
                 "no C++ compiler on PATH")
class SelfContainment(unittest.TestCase):
    CXX = os.environ.get("CXX", "g++")

    def test_missing_include_detected(self):
        bad = os.path.join(FIXTURES, "violating", "not_self_contained.hpp")
        findings = vab_lint.check_self_contained([bad], [], self.CXX, jobs=2)
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0].rule, "self-contained")

    def test_clean_header_passes(self):
        good = os.path.join(FIXTURES, "conforming", "clean_unit.hpp")
        findings = vab_lint.check_self_contained([good], [], self.CXX, jobs=2)
        self.assertEqual(findings, [])


if __name__ == "__main__":
    unittest.main(verbosity=2)
