#!/usr/bin/env python3
"""vab_lint: domain linter for determinism discipline and include hygiene.

The repro's core guarantee is that every seeded experiment is bit-identical
across thread counts and feature toggles. The golden-pin and multi-thread
suites enforce that *dynamically*; this linter enforces the hazard classes
*statically*, so a PR that reintroduces one fails CI before anyone has to
debug a golden re-pin.

Rules (suppress a deliberate use with `// vab-lint: allow(<rule-id>)` on the
same or the preceding line; annotate *why* next to it):

  no-libc-rand          rand()/srand()/rand_r(): process-global hidden state,
                        not seedable per trial. Use common::Rng.
  no-random-device      std::random_device: nondeterministic by definition.
  no-time-seeded-rng    constructing/seeding an RNG from a clock: every run
                        gets a different stream.
  no-pointer-key-order  std::map/std::set keyed on a raw pointer: ordering
                        follows allocation addresses, which vary run to run
                        (ASLR) and thread to thread.
  no-wallclock          std::chrono clocks / time() / gettimeofday outside
                        the observability layer: wall-clock reads feeding
                        logic make outcomes timing-dependent. Telemetry
                        belongs in obs/, timeouts in simulated time.
  pragma-once           every header starts with #pragma once.
  own-header-first      foo.cpp includes its own header before any other
                        include, proving the header is self-sufficient at
                        its primary point of use.
  no-using-namespace    file-scope `using namespace` in a header leaks into
                        every includer.
  simd-intrinsics-confined
                        raw SIMD intrinsics (immintrin/arm_neon includes,
                        _mm*/__m* tokens, NEON v*_f64 calls) outside
                        src/dsp/simd/: ISA-specific code must sit behind the
                        runtime dispatch layer, where the scalar-vs-SIMD
                        bit-identity suite covers it.

Retired rules (superseded by the structural analyzer tools/vab_tidy/, which
owns these hazard classes with body-aware matching; run it via the
`vab-tidy` build target or the VabTidy.* ctests):

  no-unordered-iter     -> vab-tidy check `unordered-iter-accumulate`
  rng-child-discipline  -> vab-tidy check `rng-parallel-capture`

Modes:
  vab_lint.py <root>...                 lint sources under the roots
  vab_lint.py --self-contained <root>   additionally compile each header in
                                        isolation (g++ -fsyntax-only) to
                                        prove self-containment
  vab_lint.py --list-rules              print rule ids and exit

Exit status: 0 clean, 1 findings, 2 usage/tool error.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import os
import re
import shutil
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field

CXX_EXTENSIONS = (".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h")
HEADER_EXTENSIONS = (".hpp", ".hh", ".h")

ALLOW_RE = re.compile(r"//\s*vab-lint:\s*allow\(([a-z0-9-]+)\)")
SKIP_FILE_RE = re.compile(r"//\s*vab-lint:\s*skip-file")


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class SourceFile:
    """A parsed translation unit: raw text plus a comment/string-blanked
    shadow with identical line structure, so rules can regex without false
    positives inside comments or string literals."""

    path: str
    raw: str
    code: str = field(init=False)
    raw_lines: list[str] = field(init=False)
    code_lines: list[str] = field(init=False)
    allowed: dict[int, set[str]] = field(init=False)  # line -> rule ids

    def __post_init__(self) -> None:
        self.raw_lines = self.raw.splitlines()
        self.code = blank_comments_and_strings(self.raw)
        self.code_lines = self.code.splitlines()
        self.allowed = {}
        for i, line in enumerate(self.raw_lines, start=1):
            for match in ALLOW_RE.finditer(line):
                # An annotation covers its own line and the next one, so it
                # can sit above the flagged statement or trail it.
                self.allowed.setdefault(i, set()).add(match.group(1))
                self.allowed.setdefault(i + 1, set()).add(match.group(1))

    @property
    def is_header(self) -> bool:
        return self.path.endswith(HEADER_EXTENSIONS)

    def is_allowed(self, line: int, rule: str) -> bool:
        return rule in self.allowed.get(line, set())

    def line_of(self, offset: int) -> int:
        return self.code.count("\n", 0, offset) + 1


def blank_comments_and_strings(text: str) -> str:
    """Replaces comment and string-literal contents with spaces, preserving
    newlines so offsets map to the same line numbers."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if ch == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if ch == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(ch)
        elif state == "line_comment":
            if ch == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if ch == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if ch == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if ch == "\\":
                out.append("  ")
                i += 2
                continue
            if ch == quote:
                state = "code"
                out.append(quote)
            elif ch == "\n":  # unterminated; resync rather than cascade
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def match_findings(src: SourceFile, rule: str, pattern: re.Pattern,
                   message: str) -> list[Finding]:
    found = []
    for m in pattern.finditer(src.code):
        line = src.line_of(m.start())
        if not src.is_allowed(line, rule):
            found.append(Finding(src.path, line, rule, message))
    return found


# --- nondeterminism bans ----------------------------------------------------

LIBC_RAND_RE = re.compile(
    r"\bstd\s*::\s*s?rand\s*\(|(?<![\w:.])(?:s?rand|rand_r)\s*\(")
RANDOM_DEVICE_RE = re.compile(r"\bstd\s*::\s*random_device\b")

RNG_TOKEN_RE = re.compile(
    r"\b(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine|ranlux\w+|"
    r"knuth_b|Rng)\b")
TIME_TOKEN_RE = re.compile(
    r"\bstd\s*::\s*chrono\b|(?<![\w:])time\s*\(|\bclock\s*\(\)|\brdtsc\b|"
    r"\bgettimeofday\b")

POINTER_KEY_RE = re.compile(
    r"\bstd\s*::\s*(?:map|set|multimap|multiset)\s*<\s*(?:const\s+)?[\w:]+"
    r"(?:\s*<[^<>]*>)?\s*\*")

WALLCLOCK_RE = re.compile(
    r"\bstd\s*::\s*chrono\b|\bsteady_clock\b|\bsystem_clock\b|"
    r"\bhigh_resolution_clock\b|\bgettimeofday\b|(?<![\w:.])time\s*\(\s*(?:nullptr|NULL|0)\s*\)")

# Paths (relative, slash-normalized) where wall-clock reads are legitimate:
# the observability layer exists to measure real time, the logger stamps it,
# and the thread pool parks workers on real-time waits.
WALLCLOCK_ALLOWED_PARTS = ("obs/", "common/log", "common/parallel")


def rule_no_libc_rand(src: SourceFile) -> list[Finding]:
    return match_findings(
        src, "no-libc-rand", LIBC_RAND_RE,
        "libc rand()/srand() has process-global state; use common::Rng")


def rule_no_random_device(src: SourceFile) -> list[Finding]:
    return match_findings(
        src, "no-random-device", RANDOM_DEVICE_RE,
        "std::random_device is nondeterministic; seed a common::Rng explicitly")


def rule_no_time_seeded_rng(src: SourceFile) -> list[Finding]:
    found = []
    for i, line in enumerate(src.code_lines, start=1):
        if RNG_TOKEN_RE.search(line) and TIME_TOKEN_RE.search(line):
            if not src.is_allowed(i, "no-time-seeded-rng"):
                found.append(Finding(
                    src.path, i, "no-time-seeded-rng",
                    "seeding an RNG from a clock makes every run different; "
                    "derive seeds from the experiment seed"))
    return found


def rule_no_pointer_key_order(src: SourceFile) -> list[Finding]:
    return match_findings(
        src, "no-pointer-key-order", POINTER_KEY_RE,
        "ordered container keyed on a raw pointer orders by allocation "
        "address (varies per run); key on a stable id instead")


def rule_no_wallclock(src: SourceFile) -> list[Finding]:
    norm = src.path.replace(os.sep, "/")
    if any(part in norm for part in WALLCLOCK_ALLOWED_PARTS):
        return []
    return match_findings(
        src, "no-wallclock", WALLCLOCK_RE,
        "wall-clock read outside obs/: route timing through the "
        "observability layer or simulated time")


# --- SIMD intrinsic confinement ---------------------------------------------

# Raw-intrinsic fingerprints: x86 intrinsic headers and <arm_neon.h>, SSE/AVX
# calls and vector types, NEON vector types and the v...(_lane)_{f,s,u,p}N
# call family. Matched against the blanked shadow, so discussing an intrinsic
# in a comment (as dsp docs do) never trips it.
SIMD_INTRINSICS_RE = re.compile(
    r"#\s*include\s*<(?:immintrin|x86intrin|arm_neon|[a-z]+mmintrin)\.h>"
    r"|\b_mm(?:256|512)?_\w+"
    r"|\b__m(?:64|128|256|512)[dih]?\b"
    r"|\b(?:float|poly|u?int)(?:8|16|32|64)x(?:1|2|4|8|16)_t\b"
    r"|\bv[a-z][a-z0-9_]*_[fsup](?:8|16|32|64)\s*\(")

# The one directory where ISA-specific code is legitimate: each arch header
# plus the per-ISA translation units, all gated by the bit-identity suite.
SIMD_ALLOWED_PARTS = ("dsp/simd/",)


def rule_simd_intrinsics_confined(src: SourceFile) -> list[Finding]:
    norm = src.path.replace(os.sep, "/")
    if any(part in norm for part in SIMD_ALLOWED_PARTS):
        return []
    return match_findings(
        src, "simd-intrinsics-confined", SIMD_INTRINSICS_RE,
        "raw SIMD intrinsic outside src/dsp/simd/: call the dispatched "
        "dsp::simd kernels so every ISA stays behind the bit-identity gate")


# --- retired rules ----------------------------------------------------------
#
# rule_no_unordered_iter (retired 2026-08-08): superseded by the vab-tidy
# check `unordered-iter-accumulate` (tools/vab_tidy/vab_tidy.py), which
# inspects the loop *body* and only flags iteration whose hash order can
# reach an accumulation or output stream — this regex rule flagged every
# iteration and forced annotations onto order-independent loops.
#
# rule_rng_child_discipline (retired 2026-08-08): superseded by the vab-tidy
# check `rng-parallel-capture`, which distinguishes lambda captures from
# lambda parameters and body-locals structurally instead of by token
# adjacency. The fixtures moved to tools/vab_tidy/fixtures/.


# --- include hygiene --------------------------------------------------------

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+([<"])([^">]+)[">]', re.MULTILINE)


def rule_pragma_once(src: SourceFile) -> list[Finding]:
    if not src.is_header:
        return []
    for i, line in enumerate(src.code_lines, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        if re.match(r"#\s*pragma\s+once\b", stripped):
            return []
        return [Finding(src.path, i, "pragma-once",
                        "header must start with #pragma once (before any "
                        "code)")]
    return [Finding(src.path, 1, "pragma-once", "empty header lacks #pragma once")]


def rule_own_header_first(src: SourceFile) -> list[Finding]:
    if src.is_header:
        return []
    stem = os.path.splitext(src.path)[0]
    own = None
    for ext in HEADER_EXTENSIONS:
        if os.path.exists(stem + ext):
            own = os.path.basename(stem + ext)
            break
    if own is None:
        return []
    # Include paths are string literals, so match the raw text; the blanked
    # shadow is only consulted to skip includes inside comments.
    first = None
    for m in INCLUDE_RE.finditer(src.raw):
        line = src.raw.count("\n", 0, m.start()) + 1
        if "include" in src.code_lines[line - 1]:
            first = (m, line)
            break
    if first is None:
        return []
    m, line = first
    if m.group(1) == '"' and os.path.basename(m.group(2)) == own:
        return []
    if src.is_allowed(line, "own-header-first"):
        return []
    return [Finding(src.path, line, "own-header-first",
                    f'first include must be the unit\'s own header "{own}" '
                    "(proves the header is self-contained)")]


def rule_no_using_namespace(src: SourceFile) -> list[Finding]:
    if not src.is_header:
        return []
    return match_findings(
        src, "no-using-namespace",
        re.compile(r"^\s*using\s+namespace\s+\w", re.MULTILINE),
        "`using namespace` in a header leaks into every includer")


RULES = [
    rule_no_libc_rand,
    rule_no_random_device,
    rule_no_time_seeded_rng,
    rule_no_pointer_key_order,
    rule_no_wallclock,
    rule_pragma_once,
    rule_own_header_first,
    rule_no_using_namespace,
    rule_simd_intrinsics_confined,
]

RULE_IDS = [
    "no-libc-rand", "no-random-device", "no-time-seeded-rng",
    "no-pointer-key-order", "no-wallclock", "pragma-once",
    "own-header-first", "no-using-namespace", "simd-intrinsics-confined",
]


def lint_file(path: str) -> list[Finding]:
    with open(path, encoding="utf-8", errors="replace") as fh:
        raw = fh.read()
    if SKIP_FILE_RE.search(raw):
        return []
    src = SourceFile(path, raw)
    findings = []
    seen = set()
    for rule in RULES:
        for finding in rule(src):
            # One report per (line, rule): a single hazardous statement often
            # trips several sub-patterns of the same rule.
            key = (finding.line, finding.rule)
            if key not in seen:
                seen.add(key)
                findings.append(finding)
    findings.sort(key=lambda f: (f.line, f.rule))
    return findings


def collect_sources(roots: list[str]) -> list[str]:
    files = []
    for root in roots:
        if os.path.isfile(root):
            files.append(root)
            continue
        for dirpath, _, names in os.walk(root):
            for name in sorted(names):
                if name.endswith(CXX_EXTENSIONS):
                    files.append(os.path.join(dirpath, name))
    return sorted(set(files))


# --- header self-containment (compile check) --------------------------------

def check_self_contained(headers: list[str], include_dirs: list[str],
                         cxx: str, jobs: int) -> list[Finding]:
    """Compiles `#include "<header>"` alone per header: a header that leans
    on its includers' includes fails here with the real compiler error."""

    def compile_one(header: str) -> Finding | None:
        with tempfile.NamedTemporaryFile(
                mode="w", suffix=".cpp", delete=False) as tu:
            tu.write(f'#include "{os.path.abspath(header)}"\n')
            tu_path = tu.name
        try:
            cmd = [cxx, "-std=c++20", "-fsyntax-only"]
            for inc in include_dirs:
                cmd += ["-I", inc]
            proc = subprocess.run(cmd + [tu_path], capture_output=True,
                                  text=True, check=False)
            if proc.returncode != 0:
                first_error = next(
                    (ln for ln in proc.stderr.splitlines() if "error:" in ln),
                    proc.stderr.strip().splitlines()[-1] if proc.stderr.strip() else "compile failed")
                return Finding(header, 1, "self-contained",
                               f"header does not compile in isolation: {first_error}")
            return None
        finally:
            os.unlink(tu_path)

    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
        return [f for f in pool.map(compile_one, headers) if f is not None]


def main() -> int:
    parser = argparse.ArgumentParser(
        description="determinism/hygiene linter for the vab tree")
    parser.add_argument("roots", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--self-contained", action="store_true",
                        help="also compile every header in isolation")
    parser.add_argument("--include-dir", action="append", default=[],
                        help="extra -I for --self-contained (default: each root)")
    parser.add_argument("--cxx", default=os.environ.get("CXX", "g++"))
    parser.add_argument("-j", "--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        for rule_id in RULE_IDS + ["self-contained"]:
            print(rule_id)
        return 0

    roots = args.roots or ["src"]
    files = collect_sources(roots)
    if not files:
        print(f"vab_lint: no C++ sources under {roots}", file=sys.stderr)
        return 2

    findings = []
    for path in files:
        findings.extend(lint_file(path))

    if args.self_contained:
        if shutil.which(args.cxx) is None:
            print(f"vab_lint: --self-contained needs {args.cxx} on PATH",
                  file=sys.stderr)
            return 2
        headers = [f for f in files if f.endswith(HEADER_EXTENSIONS)]
        include_dirs = args.include_dir or [
            r for r in roots if os.path.isdir(r)]
        findings.extend(check_self_contained(
            headers, include_dirs, args.cxx, args.jobs))

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for finding in findings:
        print(finding.format())
    checked = f"{len(files)} files"
    if args.self_contained:
        checked += " (+ header self-containment)"
    print(f"vab_lint: {checked}, {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
